"""Closure-compiled execution engine for mini-CUDA kernels.

The tree-walking interpreter in :mod:`repro.gpusim.interp` re-dispatches on
AST node types for every statement, every warp, every loop iteration.  This
module lowers a kernel AST *once* into a tree of specialized Python closures:
operator dispatch, index-chain resolution, dtype coercion, stat weights and
the fault/sanitizer hook sites are all resolved at compile time, so the
per-step inner loop is plain closure calls over numpy lane vectors.

Semantics are defined once by the interpreter; the closures either call the
same helpers (``_atomic_add``, shfl, the memory objects) or use the fast
re-implementations below, each of which is a line-for-line mirror of its
interpreter counterpart with only the *costs* removed: per-op ``np.errstate``
(hoisted to one guard around the whole block in ``BlockExecutor.run``),
``np.issubdtype`` dtype tests (replaced by ``dtype.kind`` checks),
``np.unique`` in the coalescing stats (replaced by Python ``set`` counting,
3x faster on 32-lane vectors), and redundant ``astype`` copies
(``copy=False`` — safe because evaluation results are never mutated in
place).  That mirroring is how the differential tests can demand
*bit-identical* outputs and statistics.

Two structural ideas keep the fast path fast while staying exact:

* **Barrier splitting** — only statements whose subtree contains
  ``__syncthreads`` are compiled to generator closures (the barrier yield
  protocol the block executor round-robins on).  Everything else compiles to
  plain functions; a barrier-free kernel body runs as one direct call wrapped
  in a never-yielding generator.
* **Lazy inactive-mask tracking** — ``ctx.has_inactive`` is only raised when
  a lane actually parks (return/break/continue/loop-exit), letting
  straight-line code skip the per-statement ``mask & ~inactive`` + ``any()``
  recomputation the interpreter always pays.

A digest-keyed LRU cache (:func:`compile_kernel`) makes lowering a
once-per-source cost shared by ``launch()``, the autotuner and the oracle.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

import numpy as np

from ..minicuda.nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Kernel,
    Member,
    Name,
    PointerType,
    Return,
    ScalarType,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
    walk,
)
from ..minicuda.pretty import emit_kernel
from . import coalescing
from .errors import IntrinsicError, MemoryFault, SimError, SyncError
from .interp import (
    BINARY_IMPLS,
    WARP_SIZE,
    WarpContext,
    _DIM_NAMES,
    _LoopFrame,
    _atomic_add,
    _broadcast,
    _pointer_arith,
    _resolve_index_chain,
    PointerValue,
)
from .intrinsics import (
    BINOP_WEIGHTS,
    DEFAULT_BINOP_WEIGHT,
    MATH_INTRINSICS,
    shfl,
    shfl_down,
    shfl_up,
)
from .memory import ConstArray, GlobalBuffer, LocalArray, SharedArray, dtype_for

#: ``ExprFn(ctx, mask) -> ndarray | PointerValue | memory object``
ExprFn = Callable[[WarpContext, np.ndarray], object]
#: ``StmtFn(ctx, mask) -> None`` (plain) or an iterator (generator form).
StmtFn = Callable[[WarpContext, np.ndarray], object]


def _stmt_loc(node) -> Optional[object]:
    loc = getattr(node, "loc", None)
    if loc is not None and loc.line:
        return loc
    return None


def _raising(exc_type, message, loc=None) -> ExprFn:
    """A closure that defers a statically-detected error to run time, so the
    compiled backend reports it with the same warp/line attribution as the
    interpreter (which only discovers it upon execution)."""

    def fn(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        raise exc_type(message)

    return fn


# ---------------------------------------------------------------------------
# Fast-path numeric and memory implementations
#
# Each function here mirrors an interpreter helper line for line; only the
# overheads differ (see the module docstring).  ``BlockExecutor.run`` holds
# one ``np.errstate(all="ignore")`` around the whole block, which is what the
# interpreter's per-op guards amount to, so these impls omit them.
# ---------------------------------------------------------------------------


def _mask_any(m: np.ndarray) -> bool:
    """``bool(m.any())`` for a lane mask, without the ufunc-reduce machinery.

    Lane masks are always products of numpy boolean ops (comparisons,
    ``&``/``|``/``~``, ``astype(bool)``), which store exactly 0x00/0x01 per
    lane, so a byte scan is equivalent and ~6x faster on 32 lanes.
    """
    return b"\x01" in m.tobytes()


def _and_not(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # a & ~b for bool lane masks in a single ufunc: True>False is the only
    # pair that compares greater.
    return np.greater(a, b)


def _fast_c_int_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Mirrors interp._c_int_div (C truncating division).
    safe_b = np.where(b == 0, 1, b)
    q = np.abs(a) // np.abs(safe_b)
    q = (np.sign(a) * np.sign(safe_b)).astype(q.dtype) * q
    return np.where(b == 0, 0, q).astype(np.result_type(a, b), copy=False)


def _fast_c_int_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    q = _fast_c_int_div(a, b)
    return (a - q * np.where(b == 0, 1, b)).astype(
        np.result_type(a, b), copy=False
    )


def _make_fast_bitwise_impl(fn):
    def impl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(
            a.astype(np.int64, copy=False), b.astype(np.int64, copy=False)
        ).astype(np.int32)

    return impl


def _make_fast_arith_impl(fop, iop):
    # `dtype.kind == "f"` is interp._is_float (issubdtype(.., floating))
    # without the numpy class-hierarchy walk.
    def impl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            return fop(
                a.astype(np.float32, copy=False),
                b.astype(np.float32, copy=False),
            ).astype(np.float32, copy=False)
        ai = a.astype(np.int32) if a.dtype.kind == "b" else a
        bi = b.astype(np.int32) if b.dtype.kind == "b" else b
        return iop(ai, bi).astype(np.result_type(ai, bi), copy=False)

    return impl


def _make_fast_int_special_impl(fop, ifn):
    def impl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.dtype.kind == "f" or b.dtype.kind == "f":
            return fop(
                a.astype(np.float32, copy=False),
                b.astype(np.float32, copy=False),
            ).astype(np.float32, copy=False)
        ai = a.astype(np.int32) if a.dtype.kind == "b" else a
        bi = b.astype(np.int32) if b.dtype.kind == "b" else b
        return ifn(ai, bi)

    return impl


#: Same keys and bit-identical results as interp.BINARY_IMPLS.
FAST_BINARY_IMPLS: dict = {
    "&&": lambda a, b: a.astype(bool, copy=False) & b.astype(bool, copy=False),
    "||": lambda a, b: a.astype(bool, copy=False) | b.astype(bool, copy=False),
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
    "&": _make_fast_bitwise_impl(np.bitwise_and),
    "|": _make_fast_bitwise_impl(np.bitwise_or),
    "^": _make_fast_bitwise_impl(np.bitwise_xor),
    "<<": _make_fast_bitwise_impl(np.left_shift),
    ">>": _make_fast_bitwise_impl(np.right_shift),
    "+": _make_fast_arith_impl(np.add, np.add),
    "-": _make_fast_arith_impl(np.subtract, np.subtract),
    "*": _make_fast_arith_impl(np.multiply, np.multiply),
    "/": _make_fast_int_special_impl(np.divide, _fast_c_int_div),
    "%": _make_fast_int_special_impl(np.fmod, _fast_c_int_mod),
}

assert FAST_BINARY_IMPLS.keys() == BINARY_IMPLS.keys()


def _fast_global_stats(
    byte_addrs: np.ndarray, mask: np.ndarray, elem_bytes: int
) -> tuple[int, bool]:
    """(transactions, fully_coalesced) in one pass over the active lanes.

    Equals ``coalescing.transactions_for`` + ``coalescing.is_fully_coalesced``
    (which recomputes the transactions); ``len(set(...))`` counts the same
    distinct 128-byte segments ``np.unique`` would.
    """
    active = byte_addrs[mask]
    if active.size == 0:
        return 0, True
    txns = len(set((active // 128).tolist()))
    needed = int(np.ceil(active.size * elem_bytes / 128))
    return txns, txns <= max(needed, 1)


def _fast_txns(byte_addrs: np.ndarray, mask: np.ndarray) -> int:
    active = byte_addrs[mask]
    if active.size == 0:
        return 0
    return len(set((active // 128).tolist()))


def _fast_bank_replays(byte_addrs: np.ndarray, mask: np.ndarray) -> int:
    # Mirrors coalescing.bank_conflict_replays: distinct 4-byte words per
    # bank, worst bank sets the pass count.
    active = byte_addrs[mask]
    if active.size == 0:
        return 0
    words = set((active // 4).tolist())
    if len(words) <= 1:
        return 0  # broadcast (or single lane): conflict-free
    counts: dict = {}
    max_degree = 1
    for word in words:
        bank = word % 32
        degree = counts.get(bank, 0) + 1
        counts[bank] = degree
        if degree > max_degree:
            max_degree = degree
    return max_degree - 1


_LANES = np.arange(WARP_SIZE)
_LANES_I64 = np.arange(WARP_SIZE, dtype=np.int64)


def _fast_global_load(buf: GlobalBuffer, offsets, mask) -> np.ndarray:
    # Mirrors GlobalBuffer.load; the bounds test delegates to _check on the
    # failing path so the MemoryFault is constructed identically.
    data = buf.data
    bad = mask & ((offsets < 0) | (offsets >= data.size))
    if _mask_any(bad):
        buf._check(offsets, mask)
    return data[np.where(mask, offsets, 0)]


def _fast_global_store(buf: GlobalBuffer, offsets, mask, values) -> None:
    data = buf.data
    bad = mask & ((offsets < 0) | (offsets >= data.size))
    if _mask_any(bad):
        buf._check(offsets, mask)
    data[offsets[mask]] = values[mask].astype(data.dtype, copy=False)


def _fast_shared_load(root: SharedArray, flat, mask) -> np.ndarray:
    data = root.data
    bad = mask & ((flat < 0) | (flat >= data.size))
    if _mask_any(bad):
        root._check(flat, mask)
    return data[np.where(mask, flat, 0)]


def _fast_shared_store(root: SharedArray, flat, mask, values) -> None:
    data = root.data
    bad = mask & ((flat < 0) | (flat >= data.size))
    if _mask_any(bad):
        root._check(flat, mask)
    data[flat[mask]] = values[mask].astype(data.dtype, copy=False)


def _local_lanes(root: LocalArray) -> np.ndarray:
    return _LANES if root.warp_size == WARP_SIZE else np.arange(root.warp_size)


def _fast_local_byte_addrs(root: LocalArray, idx) -> np.ndarray:
    # Mirrors LocalArray.byte_addrs with the lane iota cached.
    lanes = _LANES_I64 if root.warp_size == WARP_SIZE else np.arange(
        root.warp_size, dtype=np.int64
    )
    return root.base_addr + (
        idx.astype(np.int64, copy=False) * root.warp_size + lanes
    ) * root.itemsize


def _fast_local_load(root: LocalArray, idx, mask) -> np.ndarray:
    bad = mask & ((idx < 0) | (idx >= root.numel))
    if _mask_any(bad):
        root._check(idx, mask)
    return root.data[_local_lanes(root), np.where(mask, idx, 0)]


def _fast_local_store(root: LocalArray, idx, mask, values) -> None:
    bad = mask & ((idx < 0) | (idx >= root.numel))
    if _mask_any(bad):
        root._check(idx, mask)
    data = root.data
    data[_local_lanes(root)[mask], idx[mask]] = values[mask].astype(
        data.dtype, copy=False
    )


def _fast_flat_index(root: SharedArray, indices: list) -> np.ndarray:
    # Mirrors SharedArray.flat_index (row-major flattening).
    dims = root.dims
    if len(indices) != len(dims):
        raise MemoryFault(
            f"shared array {root.name!r} expects {len(dims)} indices, "
            f"got {len(indices)}"
        )
    if len(dims) == 1:
        return indices[0]
    flat = indices[0]
    for dim, idx in zip(dims[1:], indices[1:]):
        flat = flat * dim + idx
    return flat


def _fast_load_object(
    ctx: WarpContext, root, indices: list, mask: np.ndarray
):
    # Mirrors interp._load_object; stat values, hook order and failure modes
    # are identical, only the stat computation is cheaper.
    stats = ctx.stats
    inj = ctx.injector
    if isinstance(root, PointerValue):
        if len(indices) != 1:
            raise MemoryFault("global pointers are 1-D; use manual 2-D math")
        buf = root.buffer
        offsets = root.offsets + indices[0]
        if inj is not None:
            offsets = inj.corrupt_index(
                ctx, "global", buf.name, offsets, mask, buf.size
            )
        addrs = buf.base_addr + offsets.astype(np.int64, copy=False) * buf.itemsize
        if inj is not None:
            addrs = inj.corrupt_addrs(ctx, "global", buf.name, addrs, mask)
        txns, coalesced = _fast_global_stats(addrs, mask, buf.itemsize)
        stats.global_load_insts += 1
        stats.global_transactions += txns
        if not coalesced:
            stats.uncoalesced_accesses += 1
        if ctx.trace.enabled:
            ctx.trace.record_global(buf.name, txns, int(mask.sum()))
        if ctx.profile is not None:
            ctx.profile.global_access(ctx.current_loc, txns, not coalesced, False)
        value = _fast_global_load(buf, offsets, mask)
        if inj is not None:
            value = inj.flip_bits(ctx, "global", buf.name, value, mask)
        return value
    if isinstance(root, SharedArray):
        flat = _fast_flat_index(root, indices)
        if inj is not None:
            flat = inj.corrupt_index(ctx, "shared", root.name, flat, mask, root.numel)
        stats.shared_load_insts += 1
        replays = _fast_bank_replays(
            root.base_offset + flat * root.itemsize, mask
        )
        stats.shared_bank_replays += replays
        if ctx.trace.enabled:
            ctx.trace.record_shared(root.name, replays)
        if ctx.profile is not None:
            ctx.profile.shared_access(ctx.current_loc, replays, False)
        value = _fast_shared_load(root, flat, mask)
        if ctx.sanitizer is not None:
            ctx.sanitizer.shared_load(ctx, root, flat, mask)
        if inj is not None:
            value = inj.flip_bits(ctx, "shared", root.name, value, mask)
        return value
    if isinstance(root, LocalArray):
        if len(indices) != 1:
            raise MemoryFault("local arrays are 1-D in this subset")
        idx = indices[0]
        if root.in_registers:
            pass  # register operand: free (the template unrolls the index)
        else:
            stats.local_load_insts += 1
            ltx = _fast_txns(_fast_local_byte_addrs(root, idx), mask)
            stats.local_transactions += ltx
            stats.local_bytes += int(mask.sum()) * root.itemsize
            if ctx.profile is not None:
                ctx.profile.local_access(ctx.current_loc, ltx)
        value = _fast_local_load(root, idx, mask)
        if ctx.sanitizer is not None:
            ctx.sanitizer.local_load(ctx, root, idx, mask)
        return value
    if isinstance(root, ConstArray):
        if len(indices) != 1:
            raise MemoryFault("constant arrays are 1-D")
        idx = indices[0]
        stats.const_load_insts += 1
        serialized = not coalescing.broadcast_segments(root.byte_addrs(idx), mask)
        if serialized:
            stats.const_serialized += 1
        if ctx.profile is not None:
            ctx.profile.const_access(ctx.current_loc, serialized)
        return root.load(idx, mask)
    raise MemoryFault(f"cannot index into {type(root).__name__}")


def _fast_store_object(
    ctx: WarpContext, root, indices: list, mask: np.ndarray, values
) -> None:
    # Mirrors interp._store_object (see _fast_load_object).
    stats = ctx.stats
    inj = ctx.injector
    values = np.asarray(values)
    if isinstance(root, PointerValue):
        if len(indices) != 1:
            raise MemoryFault("global pointers are 1-D; use manual 2-D math")
        buf = root.buffer
        offsets = root.offsets + indices[0]
        if inj is not None:
            offsets = inj.corrupt_index(
                ctx, "global", buf.name, offsets, mask, buf.size
            )
        addrs = buf.base_addr + offsets.astype(np.int64, copy=False) * buf.itemsize
        if inj is not None:
            addrs = inj.corrupt_addrs(ctx, "global", buf.name, addrs, mask)
        txns, coalesced = _fast_global_stats(addrs, mask, buf.itemsize)
        stats.global_store_insts += 1
        stats.global_transactions += txns
        if not coalesced:
            stats.uncoalesced_accesses += 1
        if ctx.trace.enabled:
            ctx.trace.record_global(buf.name, txns, int(mask.sum()))
        if ctx.profile is not None:
            ctx.profile.global_access(ctx.current_loc, txns, not coalesced, True)
        _fast_global_store(buf, offsets, mask, values)
        return
    if isinstance(root, SharedArray):
        flat = _fast_flat_index(root, indices)
        if inj is not None:
            flat = inj.corrupt_index(ctx, "shared", root.name, flat, mask, root.numel)
        stats.shared_store_insts += 1
        replays = _fast_bank_replays(
            root.base_offset + flat * root.itemsize, mask
        )
        stats.shared_bank_replays += replays
        if ctx.trace.enabled:
            ctx.trace.record_shared(root.name, replays)
        if ctx.profile is not None:
            ctx.profile.shared_access(ctx.current_loc, replays, True)
        _fast_shared_store(root, flat, mask, values)
        if ctx.sanitizer is not None:
            ctx.sanitizer.shared_store(ctx, root, flat, mask)
        return
    if isinstance(root, LocalArray):
        if len(indices) != 1:
            raise MemoryFault("local arrays are 1-D in this subset")
        idx = indices[0]
        if root.in_registers:
            pass  # register operand: free (the template unrolls the index)
        else:
            stats.local_store_insts += 1
            ltx = _fast_txns(_fast_local_byte_addrs(root, idx), mask)
            stats.local_transactions += ltx
            stats.local_bytes += int(mask.sum()) * root.itemsize
            if ctx.profile is not None:
                ctx.profile.local_access(ctx.current_loc, ltx)
        _fast_local_store(root, idx, mask, values)
        if ctx.sanitizer is not None:
            ctx.sanitizer.local_store(ctx, root, idx, mask)
        return
    if isinstance(root, ConstArray):
        raise MemoryFault(f"constant array {root.name!r} is read-only")
    raise MemoryFault(f"cannot store into {type(root).__name__}")


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


def _compile_literal(values: np.ndarray) -> ExprFn:
    values.flags.writeable = False

    def fn(ctx: WarpContext, mask: np.ndarray):
        return values

    return fn


def _compile_name(name: str) -> ExprFn:
    # Scalar kernel params broadcast to the same lane vector on every read;
    # cache the (read-only) broadcast per value.  Keys are ("i"/"f", value)
    # tuples because int and float keys of equal value collide in a dict.
    broadcasts: dict = {}

    def fn(ctx: WarpContext, mask: np.ndarray):
        try:
            value = ctx.env[name]
        except KeyError as exc:
            raise SimError(f"undefined variable {name!r}") from exc
        if value.__class__ is np.ndarray:
            return value
        if isinstance(value, (int, np.integer)):
            key = ("i", int(value))
            arr = broadcasts.get(key)
            if arr is None:
                arr = np.full(WARP_SIZE, key[1], dtype=np.int32)
                arr.flags.writeable = False
                broadcasts[key] = arr
            return arr
        if isinstance(value, float):
            key = ("f", value)
            arr = broadcasts.get(key)
            if arr is None:
                arr = np.full(WARP_SIZE, value, dtype=np.float32)
                arr.flags.writeable = False
                broadcasts[key] = arr
            return arr
        if isinstance(value, GlobalBuffer):
            return PointerValue(value, np.zeros(WARP_SIZE, dtype=np.int64))
        return value

    return fn


def _compile_binary(expr: Binary) -> ExprFn:
    lhs_fn = compile_expr(expr.lhs)
    rhs_fn = compile_expr(expr.rhs)
    op = expr.op
    impl = FAST_BINARY_IMPLS.get(op)
    if impl is None:
        # Same failure mode as the interpreter's table lookup.
        def unknown(ctx: WarpContext, mask: np.ndarray):
            lhs_fn(ctx, mask)
            rhs_fn(ctx, mask)
            ctx.stats.alu_insts += DEFAULT_BINOP_WEIGHT
            raise KeyError(op)

        return unknown
    weight = BINOP_WEIGHTS.get(op, DEFAULT_BINOP_WEIGHT)
    const_name: Optional[str] = None
    if op in ("/", "%"):
        if isinstance(expr.rhs, IntLit):
            # Division by a compile-time constant strength-reduces (the
            # NP variants divide by the template parameter slave_size).
            weight = 1.0
        elif isinstance(expr.rhs, Name):
            const_name = expr.rhs.id

    if const_name is not None:
        heavy = weight

        def fn_dyn(ctx: WarpContext, mask: np.ndarray):
            lhs = lhs_fn(ctx, mask)
            rhs = rhs_fn(ctx, mask)
            if isinstance(ctx.env.get(const_name), (int, np.integer)):
                ctx.stats.alu_insts += 1.0
            else:
                ctx.stats.alu_insts += heavy
            if lhs.__class__ is PointerValue or rhs.__class__ is PointerValue:
                return _pointer_arith(op, lhs, rhs)
            return impl(lhs, rhs)

        return fn_dyn

    def fn(ctx: WarpContext, mask: np.ndarray):
        lhs = lhs_fn(ctx, mask)
        rhs = rhs_fn(ctx, mask)
        ctx.stats.alu_insts += weight
        if lhs.__class__ is PointerValue or rhs.__class__ is PointerValue:
            return _pointer_arith(op, lhs, rhs)
        return impl(lhs, rhs)

    return fn


def _compile_unary(expr: Unary) -> ExprFn:
    operand_fn = compile_expr(expr.operand)
    op = expr.op
    if op == "-":
        def neg(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += 1
            return -value

        return neg
    if op == "+":
        def pos(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += 1
            return value

        return pos
    if op == "!":
        def lnot(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += 1
            return ~value.astype(bool, copy=False)

        return lnot
    if op == "~":
        def bnot(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += 1
            return (~value.astype(np.int64)).astype(np.int32)

        return bnot

    def unknown(ctx, mask):
        operand_fn(ctx, mask)
        ctx.stats.alu_insts += 1
        raise SimError(f"unknown unary op {op}")

    return unknown


def _compile_index_chain(expr: Index):
    root_expr, index_exprs = _resolve_index_chain(expr)
    root_fn = compile_expr(root_expr)
    idx_fns = tuple(compile_expr(ie) for ie in index_exprs)
    return root_fn, idx_fns


def _compile_load(expr: Index) -> ExprFn:
    loc = _stmt_loc(expr)
    root_fn, idx_fns = _compile_index_chain(expr)

    def fn(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        root = root_fn(ctx, mask)
        indices = [f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns]
        return _fast_load_object(ctx, root, indices, mask)

    return fn


def _compile_call(expr: Call) -> ExprFn:
    func = expr.func
    loc = _stmt_loc(expr)
    if func == "__syncthreads":
        return _raising(
            SimError, "__syncthreads() must be a standalone statement", loc
        )
    if func in ("__shfl", "__shfl_down", "__shfl_up"):
        if len(expr.args) != 3:
            return _raising(
                IntrinsicError, f"{func} expects (var, lane, width)", loc
            )
        var_fn = compile_expr(expr.args[0])
        lane_fn = compile_expr(expr.args[1])
        width_fn = compile_expr(expr.args[2])
        if func == "__shfl":
            def do_shfl(ctx: WarpContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                var = var_fn(ctx, mask)
                lane = lane_fn(ctx, mask)
                width = int(width_fn(ctx, mask)[0])
                ctx.stats.shfl_insts += 1
                if ctx.profile is not None:
                    ctx.profile.shfl(ctx.current_loc)
                if ctx.injector is not None:
                    lane = ctx.injector.corrupt_shfl_lane(
                        ctx, _broadcast(lane), width
                    )
                return shfl(var, lane, width)

            return do_shfl
        shift_fn = shfl_down if func == "__shfl_down" else shfl_up

        def do_shift(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            var = var_fn(ctx, mask)
            lane = lane_fn(ctx, mask)
            width = int(width_fn(ctx, mask)[0])
            ctx.stats.shfl_insts += 1
            if ctx.profile is not None:
                ctx.profile.shfl(ctx.current_loc)
            return shift_fn(var, int(lane[0]), width)

        return do_shift
    if func == "atomicAdd":
        if len(expr.args) != 2 or not isinstance(expr.args[0], Index):
            return _raising(
                IntrinsicError, "atomicAdd expects (array[index], value)", loc
            )
        root_fn, idx_fns = _compile_index_chain(expr.args[0])
        delta_fn = compile_expr(expr.args[1])

        def do_atomic(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            root = root_fn(ctx, mask)
            indices = [
                f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns
            ]
            delta = delta_fn(ctx, mask)
            ctx.stats.atomic_insts += 1
            if ctx.profile is not None:
                ctx.profile.atomic(ctx.current_loc)
            return _atomic_add(ctx, root, indices, mask, delta)

        return do_atomic
    if func == "tex1Dfetch":
        if len(expr.args) != 2 or not isinstance(expr.args[0], Name):
            return _raising(
                IntrinsicError, "tex1Dfetch expects (texture_name, index)", loc
            )
        tex_name = expr.args[0].id
        idx_fn = compile_expr(expr.args[1])

        def do_tex(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            tex = ctx.env.get(tex_name)
            idx = idx_fn(ctx, mask).astype(np.int64, copy=False)
            if isinstance(tex, (ConstArray, GlobalBuffer)):
                # Texture-cache amortization: see interp._eval_call.
                ctx.stats.global_load_insts += 1
                active = int(mask.sum())
                txns = max(1, (active * tex.itemsize + 127) // 128)
                ctx.stats.global_transactions += txns
                if ctx.profile is not None:
                    ctx.profile.global_access(ctx.current_loc, txns, False, False)
                return tex.load(idx, mask)
            raise IntrinsicError(f"texture {tex_name!r} not bound")

        return do_tex
    intrinsic = MATH_INTRINSICS.get(func)
    if intrinsic is not None:
        if len(expr.args) != intrinsic.arity:
            return _raising(
                IntrinsicError,
                f"{func} expects {intrinsic.arity} args, got {len(expr.args)}",
                loc,
            )
        arg_fns = tuple(compile_expr(a) for a in expr.args)
        impl = intrinsic.fn
        weight = intrinsic.weight

        def do_intrinsic(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            args = [f(ctx, mask) for f in arg_fns]
            ctx.stats.alu_insts += weight
            return impl(*args)

        return do_intrinsic
    return _raising(IntrinsicError, f"unknown device function {func!r}", loc)


def compile_expr(expr: Expr) -> ExprFn:
    """Lower one expression to a specialized closure ``fn(ctx, mask)``."""
    if isinstance(expr, IntLit):
        value = expr.value & 0xFFFFFFFF
        if value > 0x7FFFFFFF:
            value -= 0x100000000  # wrap to int32 like C
        return _compile_literal(np.full(WARP_SIZE, value, dtype=np.int32))
    if isinstance(expr, FloatLit):
        return _compile_literal(np.full(WARP_SIZE, expr.value, dtype=np.float32))
    if isinstance(expr, BoolLit):
        return _compile_literal(np.full(WARP_SIZE, expr.value, dtype=np.bool_))
    if isinstance(expr, Name):
        return _compile_name(expr.id)
    if isinstance(expr, Member):
        if isinstance(expr.base, Name) and expr.base.id in _DIM_NAMES:
            key = f"{expr.base.id}.{expr.name}"

            def builtin(ctx: WarpContext, mask: np.ndarray):
                try:
                    return ctx.env[key]
                except KeyError as exc:
                    raise SimError(f"unknown builtin {key}") from exc

            return builtin
        return _raising(SimError, f"unsupported member access .{expr.name}")
    if isinstance(expr, Unary):
        return _compile_unary(expr)
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Ternary):
        cond_fn = compile_expr(expr.cond)
        then_fn = compile_expr(expr.then)
        els_fn = compile_expr(expr.els)

        def ternary(ctx: WarpContext, mask: np.ndarray):
            cond = cond_fn(ctx, mask).astype(bool, copy=False)
            then = then_fn(ctx, mask)
            els = els_fn(ctx, mask)
            ctx.stats.alu_insts += 1  # select
            if then.dtype.kind == "f" or els.dtype.kind == "f":
                then = then.astype(np.float32, copy=False)
                els = els.astype(np.float32, copy=False)
            return np.where(cond, then, els)

        return ternary
    if isinstance(expr, Cast):
        inner_fn = compile_expr(expr.expr)
        type_name = expr.type.name
        try:
            cast_dtype = dtype_for(type_name)
        except MemoryFault as exc:
            cast_dtype = None
            cast_error = str(exc)

        def cast(ctx: WarpContext, mask: np.ndarray):
            value = inner_fn(ctx, mask)
            ctx.stats.alu_insts += 1
            if value.__class__ is PointerValue:
                return value
            if cast_dtype is None:
                raise MemoryFault(cast_error)
            return value.astype(cast_dtype, copy=False)

        return cast
    if isinstance(expr, Index):
        return _compile_load(expr)
    if isinstance(expr, Call):
        return _compile_call(expr)
    return _raising(SimError, f"cannot evaluate expression {expr!r}")


# ---------------------------------------------------------------------------
# Statement lowering
# ---------------------------------------------------------------------------


def _has_barrier(node) -> bool:
    return any(
        isinstance(n, Call) and n.func == "__syncthreads" for n in walk(node)
    )


def _has_flow(block: Block) -> bool:
    """Whether the loop body can park lanes via break/continue/return."""
    return any(
        isinstance(n, (Break, Continue, Return)) for n in walk(block)
    )


def _compile_decl(stmt: VarDecl) -> StmtFn:
    type_ = stmt.type
    name = stmt.name
    loc = _stmt_loc(stmt)
    if isinstance(type_, ArrayType):
        if type_.space in ("shared", "constant"):
            missing = (
                f"shared array {name!r} was not pre-allocated"
                if type_.space == "shared"
                else f"constant array {name!r} was not bound"
            )

            def check(ctx: WarpContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                if name not in ctx.env:
                    raise SimError(missing)

            return check
        numel = type_.numel
        elem = type_.elem.name
        in_registers = type_.space == "reg"

        def local_decl(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            existing = ctx.env.get(name)
            if isinstance(existing, LocalArray) and existing.numel == numel:
                existing.data[...] = 0
                existing.shadow = None  # re-declared: sanitizer state resets
            else:
                base = ctx.env.get("__local_base__", 1 << 32)
                arr = LocalArray(
                    name, numel, elem, base_addr=base, in_registers=in_registers
                )
                ctx.env["__local_base__"] = base + arr.bytes_per_thread * WARP_SIZE
                ctx.env[name] = arr

        return local_decl
    if stmt.init is None:
        if isinstance(type_, PointerType):
            message = f"pointer {name!r} declared without initializer"

            def bad_ptr(ctx: WarpContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                raise SimError(message)

            return bad_ptr
        dtype = (
            np.float32
            if isinstance(type_, ScalarType) and type_.name == "float"
            else np.int32
        )
        zeros = np.zeros(WARP_SIZE, dtype=dtype)
        zeros.flags.writeable = False  # shared: assignments replace, not mutate

        def zero_decl(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            ctx.env[name] = zeros

        return zero_decl
    init_fn = compile_expr(stmt.init)
    if isinstance(type_, PointerType):
        def ptr_decl(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = init_fn(ctx, mask)
            if not isinstance(value, PointerValue):
                raise SimError(f"pointer {name!r} initialized with non-pointer")
            ctx.env[name] = value

        return ptr_decl
    type_name = type_.name
    try:
        decl_dtype = dtype_for(type_name)
    except MemoryFault as exc:
        return _raising(MemoryFault, str(exc), loc)

    def scalar_decl(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        value = init_fn(ctx, mask)
        if isinstance(value, PointerValue):
            raise SimError(f"scalar {name!r} initialized with pointer")
        ctx.env[name] = value.astype(decl_dtype, copy=False)

    return scalar_decl


def _compile_assign(stmt: Assign) -> StmtFn:
    loc = _stmt_loc(stmt)
    if stmt.op != "=":
        # Compound assignment: evaluate target op value (loads count).
        value_fn = compile_expr(Binary(stmt.op[:-1], stmt.target, stmt.value))
    else:
        value_fn = compile_expr(stmt.value)
    target = stmt.target
    if isinstance(target, Name):
        name = target.id

        def assign_name(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = value_fn(ctx, mask)
            old = ctx.env.get(name)
            if value.__class__ is PointerValue:
                ctx.env[name] = value
                return
            if old is None:
                raise SimError(f"assignment to undeclared variable {name!r}")
            if isinstance(old, (int, float)):
                # Scalar kernel params broadcast per warp on first write.
                old = _broadcast(
                    old, np.int32 if isinstance(old, int) else np.float32
                )
            if old.__class__ is PointerValue:
                ctx.env[name] = value
                return
            if (
                mask is ctx.entry_mask
                and ctx.entry_full
                and not ctx.has_inactive
            ):
                # Every lane of a full warp is active: np.where would select
                # `value` in every lane, so skip it.  The identity test is
                # exact — divergent regions always pass freshly-derived mask
                # arrays, never the warp's entry mask object.
                ctx.env[name] = value.astype(old.dtype, copy=False)
            else:
                ctx.env[name] = np.where(
                    mask, value.astype(old.dtype, copy=False), old
                )

        return assign_name
    if isinstance(target, Index):
        root_fn, idx_fns = _compile_index_chain(target)

        def assign_index(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = value_fn(ctx, mask)
            root = root_fn(ctx, mask)
            indices = [
                f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns
            ]
            _fast_store_object(ctx, root, indices, mask, value)

        return assign_index
    message = f"invalid assignment target {type(target).__name__}"

    def bad_target(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        value_fn(ctx, mask)
        raise SimError(message)

    return bad_target


def _compile_sync(stmt: ExprStmt) -> StmtFn:
    loc = _stmt_loc(stmt)
    line = stmt.loc.line if stmt.loc is not None else 0

    def sync(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        ctx.stats.syncthreads += 1
        if ctx.profile is not None:
            ctx.profile.sync(line)
        sync_mask = mask
        if ctx.injector is not None:
            skip = ctx.injector.sync_skip_lanes(ctx, sync_mask)
            if skip is not None:
                sync_mask = sync_mask & ~skip
        # A withheld lane is always a fault: lanes that executed this
        # statement did not all arrive (only injection can cause this).
        withheld = mask & ~sync_mask
        if withheld.any():
            lanes = np.nonzero(withheld)[0].tolist()
            raise SyncError(
                f"lanes {lanes} of warp {ctx.warp_idx} missed the "
                "barrier: __syncthreads reached by only part of the warp",
                lanes=lanes,
            )
        if ctx.synccheck:
            # See interp.exec_stmt for the synccheck/hardware semantics note.
            expected = ctx.init_mask & ~ctx.returned
            missing = expected & ~mask
            if missing.any():
                lanes = np.nonzero(missing)[0].tolist()
                raise SyncError(
                    "__syncthreads reached by only part of the thread "
                    f"block: lanes {lanes} of warp {ctx.warp_idx} are "
                    "divergence-parked at this barrier",
                    lanes=lanes,
                )
        yield ("sync", line)

    return sync


def _compile_if(stmt: If) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    line = loc.line if loc is not None else None
    cond_fn = compile_expr(stmt.cond)
    then_fn, then_gen = compile_block(stmt.then)
    has_else = stmt.els is not None and bool(stmt.els.stmts)
    els_fn, els_gen = (
        compile_block(stmt.els) if has_else else (None, False)
    )
    is_gen = then_gen or els_gen

    if not is_gen:
        def plain_if(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            cond = cond_fn(ctx, mask).astype(bool, copy=False)
            ctx.stats.control_insts += 1
            m_then = mask & cond
            then_any = _mask_any(m_then)
            if has_else:
                m_else = _and_not(mask, cond)
                else_any = _mask_any(m_else)
                if then_any and else_any:
                    ctx.stats.divergent_branches += 1
                    if ctx.profile is not None and line is not None:
                        ctx.profile.divergent(line)
                if then_any:
                    then_fn(ctx, m_then)
                if else_any:
                    els_fn(ctx, m_else)
            elif then_any:
                then_fn(ctx, m_then)

        return plain_if, False

    def gen_if(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        cond = cond_fn(ctx, mask).astype(bool, copy=False)
        ctx.stats.control_insts += 1
        m_then = mask & cond
        then_any = _mask_any(m_then)
        if has_else:
            m_else = _and_not(mask, cond)
            else_any = _mask_any(m_else)
            if then_any and else_any:
                ctx.stats.divergent_branches += 1
                if ctx.profile is not None and line is not None:
                    ctx.profile.divergent(line)
            if then_any:
                if then_gen:
                    yield from then_fn(ctx, m_then)
                else:
                    then_fn(ctx, m_then)
            if else_any:
                if els_gen:
                    yield from els_fn(ctx, m_else)
                else:
                    els_fn(ctx, m_else)
        elif then_any:
            if then_gen:
                yield from then_fn(ctx, m_then)
            else:
                then_fn(ctx, m_then)

    return gen_if, True


def _compile_for(stmt: For) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    init_fn, init_gen = (
        compile_stmt(stmt.init) if stmt.init is not None else (None, False)
    )
    cond_fn = compile_expr(stmt.cond) if stmt.cond is not None else None
    update_fn, update_gen = (
        compile_stmt(stmt.update) if stmt.update is not None else (None, False)
    )
    body_fn, body_gen = compile_block(stmt.body)
    flow = _has_flow(stmt.body)
    is_gen = init_gen or update_gen or body_gen

    if not is_gen:
        def plain_for(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if init_fn is not None:
                init_fn(ctx, mask)
            frame = _LoopFrame.new()
            ctx.loop_stack.append(frame)
            try:
                while True:
                    if ctx.has_inactive:
                        m = _and_not(mask, ctx.inactive)
                        if not _mask_any(m):
                            break
                    else:
                        m = mask
                    if cond_fn is not None:
                        cond = cond_fn(ctx, m).astype(bool, copy=False)
                        ctx.stats.control_insts += 1
                        leaving = _and_not(m, cond)
                        if _mask_any(leaving):
                            frame.exited |= leaving
                            ctx.inactive |= leaving
                            ctx.has_inactive = True
                            m = m & cond
                            if not _mask_any(m):
                                break
                    body_fn(ctx, m)
                    if flow:
                        # Reactivate lanes parked by 'continue'.
                        ctx.inactive &= ~frame.cont
                        frame.cont[:] = False
                        ctx.has_inactive = _mask_any(ctx.inactive)
                        if update_fn is not None:
                            mu = _and_not(mask, ctx.inactive)
                            if _mask_any(mu):
                                update_fn(ctx, mu)
                    elif update_fn is not None:
                        # No break/continue/return in the body: the active
                        # set cannot shrink between cond and update.
                        update_fn(ctx, m)
            finally:
                ctx.loop_stack.pop()
                ctx.inactive &= ~(frame.broken | frame.exited)
                ctx.has_inactive = _mask_any(ctx.inactive)

        return plain_for, False

    def gen_for(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        if init_fn is not None:
            if init_gen:
                yield from init_fn(ctx, mask)
            else:
                init_fn(ctx, mask)
        frame = _LoopFrame.new()
        ctx.loop_stack.append(frame)
        try:
            while True:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        break
                else:
                    m = mask
                if cond_fn is not None:
                    cond = cond_fn(ctx, m).astype(bool, copy=False)
                    ctx.stats.control_insts += 1
                    leaving = _and_not(m, cond)
                    if _mask_any(leaving):
                        frame.exited |= leaving
                        ctx.inactive |= leaving
                        ctx.has_inactive = True
                        m = m & cond
                        if not _mask_any(m):
                            break
                if body_gen:
                    yield from body_fn(ctx, m)
                else:
                    body_fn(ctx, m)
                if flow:
                    ctx.inactive &= ~frame.cont
                    frame.cont[:] = False
                    ctx.has_inactive = _mask_any(ctx.inactive)
                    if update_fn is not None:
                        mu = _and_not(mask, ctx.inactive)
                        if _mask_any(mu):
                            if update_gen:
                                yield from update_fn(ctx, mu)
                            else:
                                update_fn(ctx, mu)
                elif update_fn is not None:
                    if update_gen:
                        yield from update_fn(ctx, m)
                    else:
                        update_fn(ctx, m)
        finally:
            ctx.loop_stack.pop()
            ctx.inactive &= ~(frame.broken | frame.exited)
            ctx.has_inactive = _mask_any(ctx.inactive)

    return gen_for, True


def _compile_while(stmt: While) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    cond_fn = compile_expr(stmt.cond)
    body_fn, body_gen = compile_block(stmt.body)
    flow = _has_flow(stmt.body)

    if not body_gen:
        def plain_while(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            frame = _LoopFrame.new()
            ctx.loop_stack.append(frame)
            try:
                while True:
                    if ctx.has_inactive:
                        m = _and_not(mask, ctx.inactive)
                        if not _mask_any(m):
                            break
                    else:
                        m = mask
                    cond = cond_fn(ctx, m).astype(bool, copy=False)
                    ctx.stats.control_insts += 1
                    leaving = _and_not(m, cond)
                    if _mask_any(leaving):
                        frame.exited |= leaving
                        ctx.inactive |= leaving
                        ctx.has_inactive = True
                        m = m & cond
                        if not _mask_any(m):
                            break
                    body_fn(ctx, m)
                    if flow:
                        ctx.inactive &= ~frame.cont
                        frame.cont[:] = False
                        ctx.has_inactive = _mask_any(ctx.inactive)
            finally:
                ctx.loop_stack.pop()
                ctx.inactive &= ~(frame.broken | frame.exited)
                ctx.has_inactive = _mask_any(ctx.inactive)

        return plain_while, False

    def gen_while(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        frame = _LoopFrame.new()
        ctx.loop_stack.append(frame)
        try:
            while True:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        break
                else:
                    m = mask
                cond = cond_fn(ctx, m).astype(bool, copy=False)
                ctx.stats.control_insts += 1
                leaving = _and_not(m, cond)
                if _mask_any(leaving):
                    frame.exited |= leaving
                    ctx.inactive |= leaving
                    ctx.has_inactive = True
                    m = m & cond
                    if not _mask_any(m):
                        break
                yield from body_fn(ctx, m)
                if flow:
                    ctx.inactive &= ~frame.cont
                    frame.cont[:] = False
                    ctx.has_inactive = _mask_any(ctx.inactive)
        finally:
            ctx.loop_stack.pop()
            ctx.inactive &= ~(frame.broken | frame.exited)
            ctx.has_inactive = _mask_any(ctx.inactive)

    return gen_while, True


#: True while :func:`compile_kernel` lowers a kernel in profile mode: every
#: located statement closure is then wrapped with the per-line issue hook
#: (the compiled analogue of the hook at the top of ``interp.exec_stmt``).
#: Lowering is synchronous and single-threaded, so a module flag is safe and
#: avoids threading a parameter through the whole recursive lowerer.
_PROFILE_LOWERING = False


def _wrap_profiled(fn: StmtFn, is_gen: bool, line: int) -> StmtFn:
    """Fire ``profile.stmt`` when the statement executes.

    Mirrors the interpreter exactly: ``exec_stmt`` is a generator whose
    hook runs on first advance, and ``yield from`` advances immediately
    after creation, so a generator wrapper keeps both the firing point and
    the per-execution count identical.
    """
    if is_gen:

        def gen_hook(ctx: WarpContext, mask: np.ndarray):
            if ctx.profile is not None:
                ctx.profile.stmt(line, int(mask.sum()))
            yield from fn(ctx, mask)

        return gen_hook

    def hook(ctx: WarpContext, mask: np.ndarray):
        if ctx.profile is not None:
            ctx.profile.stmt(line, int(mask.sum()))
        fn(ctx, mask)

    return hook


def compile_stmt(stmt: Stmt) -> tuple[StmtFn, bool]:
    """Lower one statement; returns ``(fn, is_generator)``.

    In profile-lowering mode every statement with a source location gets
    the per-line issue hook — the same condition (``loc is not None and
    loc.line``, i.e. :func:`_stmt_loc`) the interpreter's hook uses.
    """
    fn, is_gen = _compile_stmt_dispatch(stmt)
    if _PROFILE_LOWERING:
        loc = _stmt_loc(stmt)
        if loc is not None:
            return _wrap_profiled(fn, is_gen, loc.line), is_gen
    return fn, is_gen


def _compile_stmt_dispatch(stmt: Stmt) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    if isinstance(stmt, VarDecl):
        return _compile_decl(stmt), False
    if isinstance(stmt, Assign):
        return _compile_assign(stmt), False
    if isinstance(stmt, ExprStmt):
        if isinstance(stmt.expr, Call) and stmt.expr.func == "__syncthreads":
            return _compile_sync(stmt), True
        expr_fn = compile_expr(stmt.expr)

        def eval_stmt(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            expr_fn(ctx, mask)

        return eval_stmt, False
    if isinstance(stmt, Block):
        block_fn, block_gen = compile_block(stmt)
        if not block_gen:
            def plain_nested(ctx: WarpContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                block_fn(ctx, mask)

            return plain_nested, False

        def gen_nested(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            yield from block_fn(ctx, mask)

        return gen_nested, True
    if isinstance(stmt, If):
        return _compile_if(stmt)
    if isinstance(stmt, For):
        return _compile_for(stmt)
    if isinstance(stmt, While):
        return _compile_while(stmt)
    if isinstance(stmt, Return):
        value_fn = compile_expr(stmt.value) if stmt.value is not None else None

        def do_return(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if value_fn is not None:
                value_fn(ctx, mask)
            ctx.returned |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_return, False
    if isinstance(stmt, Break):
        def do_break(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if not ctx.loop_stack:
                raise SimError("break outside loop")
            ctx.loop_stack[-1].broken |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_break, False
    if isinstance(stmt, Continue):
        def do_continue(ctx: WarpContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if not ctx.loop_stack:
                raise SimError("continue outside loop")
            ctx.loop_stack[-1].cont |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_continue, False
    kind = type(stmt).__name__

    def unknown(ctx: WarpContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        raise SimError(f"cannot execute statement {kind}")

    return unknown, False


def compile_block(block: Block) -> tuple[StmtFn, bool]:
    """Lower a statement list; returns ``(fn, is_generator)``.

    The per-statement ``mask & ~inactive`` recomputation the interpreter
    always performs is gated on ``ctx.has_inactive``: as long as no lane has
    parked, each statement runs under the block's entry mask directly.
    """
    pairs = [compile_stmt(s) for s in block.stmts]
    if not any(gen for _, gen in pairs):
        fns = tuple(fn for fn, _ in pairs)
        if len(fns) == 1:
            single = fns[0]

            def run_single(ctx: WarpContext, mask: np.ndarray):
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        return
                    single(ctx, m)
                else:
                    single(ctx, mask)

            return run_single, False

        def run_plain(ctx: WarpContext, mask: np.ndarray):
            for fn in fns:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        return
                    fn(ctx, m)
                else:
                    fn(ctx, mask)

        return run_plain, False
    items = tuple(pairs)

    def run_gen(ctx: WarpContext, mask: np.ndarray):
        for fn, is_gen in items:
            if ctx.has_inactive:
                m = _and_not(mask, ctx.inactive)
                if not _mask_any(m):
                    return
            else:
                m = mask
            if is_gen:
                yield from fn(ctx, m)
            else:
                fn(ctx, m)

    return run_gen, True


# ---------------------------------------------------------------------------
# Compiled kernels and the compile cache
# ---------------------------------------------------------------------------


@dataclass
class CompiledKernel:
    """One kernel lowered to closures — a drop-in body for
    :class:`~repro.gpusim.interp.BlockExecutor` (``program=`` argument)."""

    kernel: Kernel
    digest: Optional[str]
    body_fn: StmtFn
    body_is_gen: bool
    uses_atomics: bool
    #: Whether statement closures carry the per-line profile issue hook
    #: (compiled via ``compile_kernel(..., profile=True)``; cached under a
    #: separate key so the non-profiled hot path stays wrapper-free).
    profiled: bool = False

    @property
    def has_barriers(self) -> bool:
        return self.body_is_gen

    def warp_iterator(self, ctx: WarpContext, mask: np.ndarray) -> Iterator:
        """The generator the block executor round-robins; a barrier-free
        body runs to completion on the first ``next()``."""
        if self.body_is_gen:
            return self.body_fn(ctx, mask)
        return _plain_iterator(self.body_fn, ctx, mask)


def _plain_iterator(body_fn: StmtFn, ctx: WarpContext, mask: np.ndarray):
    body_fn(ctx, mask)
    return
    yield  # pragma: no cover - makes this function a generator


def kernel_uses_atomics(kernel: Kernel) -> bool:
    """Atomics accumulate across blocks, which the parallel scheduler's
    diff-based memory merge cannot reproduce — such kernels run sequentially."""
    return any(
        isinstance(n, Call) and n.func == "atomicAdd" for n in walk(kernel.body)
    )


def kernel_flatten_safe(kernel: Kernel) -> bool:
    """True when no ``__syncthreads`` sits under an ``if`` branch.

    The megawarp lowering executes all warps of all blocks in statement
    lockstep, which makes a top-level (or loop-level) barrier a trivially
    satisfied ordering point.  A barrier *inside a divergent branch* is the
    one pattern lockstep cannot honour: pre-Volta master/slave kernels rely
    on the round-robin letting a producer branch run before a consumer
    branch that textually precedes it, so those kernels must keep the
    per-warp-slot generator schedule.
    """

    def scan(stmt, branched: bool) -> bool:
        if isinstance(stmt, ExprStmt):
            return not (
                branched
                and isinstance(stmt.expr, Call)
                and stmt.expr.func == "__syncthreads"
            )
        if isinstance(stmt, Block):
            return all(scan(s, branched) for s in stmt.stmts)
        if isinstance(stmt, If):
            if not scan(stmt.then, True):
                return False
            return stmt.els is None or scan(stmt.els, True)
        if isinstance(stmt, For):
            if stmt.init is not None and not scan(stmt.init, branched):
                return False
            if stmt.update is not None and not scan(stmt.update, branched):
                return False
            return scan(stmt.body, branched)
        if isinstance(stmt, While):
            return scan(stmt.body, branched)
        return True

    return scan(kernel.body, False)


def kernel_atomic_order_free(kernel: Kernel) -> bool:
    """True when batched per-statement atomic execution is bit-exact.

    Sequential execution interleaves atomic issues warp-by-warp (warp 0 runs
    its whole body, then warp 1 …), while the flattened megablock engine
    issues each atomic *statement* once for every row.  The two orders
    produce identical bytes exactly when, for every atomic target buffer,
    either

    * the buffer has a **single** ``atomicAdd`` site outside any loop — each
      row contributes at most one delta per address and the batched
      sort-by-address fold replays them in ascending row (= sequential)
      order, so both the final values and every returned "old" value match
      bit-for-bit, any dtype; or
    * the buffer has an **integer** element type and every site discards the
      ``atomicAdd`` result — modular integer addition is associative and
      commutative, so the final bytes are order-independent (but the "old"
      values are not, hence the discard requirement).

    Anything else — float accumulators hit from several sites or from inside
    a loop, observed old values on multi-site buffers, or a target that
    cannot be resolved to a kernel parameter / shared / local declaration
    (pointer aliasing) — reports False and keeps the exact per-block path.
    """
    elem_kind: dict[str, str] = {}
    pointer_params = set()
    for param in kernel.params:
        if isinstance(param.type, PointerType):
            pointer_params.add(param.name)
            try:
                elem_kind[param.name] = dtype_for(param.type.elem.name).kind
            except MemoryFault:
                pass
    aliasing = False
    for node in walk(kernel.body):
        if isinstance(node, VarDecl):
            if isinstance(node.type, ArrayType):
                try:
                    elem_kind[node.name] = dtype_for(node.type.elem.name).kind
                except MemoryFault:
                    pass
            elif isinstance(node.type, PointerType):
                # A derived pointer may alias a parameter buffer, defeating
                # the name-based site counting below.
                aliasing = True
        elif isinstance(node, Assign):
            if isinstance(node.target, Name) and node.target.id in pointer_params:
                aliasing = True

    sites: dict[str, list[tuple[bool, bool]]] = {}
    resolvable = True

    def record(call: Call, in_loop: bool, discarded: bool) -> None:
        nonlocal resolvable
        if len(call.args) != 2 or not isinstance(call.args[0], Index):
            return  # malformed call: raises at execution in every engine
        root_expr, _ = _resolve_index_chain(call.args[0])
        if not isinstance(root_expr, Name):
            resolvable = False
            return
        sites.setdefault(root_expr.id, []).append((in_loop, discarded))

    def scan_expr(expr, in_loop: bool, top: bool) -> None:
        if expr is None:
            return
        for node in walk(expr):
            if isinstance(node, Call) and node.func == "atomicAdd":
                record(node, in_loop, discarded=(top and node is expr))

    def scan_stmt(stmt, in_loop: bool) -> None:
        if isinstance(stmt, ExprStmt):
            scan_expr(stmt.expr, in_loop, top=True)
        elif isinstance(stmt, VarDecl):
            scan_expr(stmt.init, in_loop, top=False)
        elif isinstance(stmt, Assign):
            scan_expr(stmt.target, in_loop, top=False)
            scan_expr(stmt.value, in_loop, top=False)
        elif isinstance(stmt, Return):
            scan_expr(stmt.value, in_loop, top=False)
        elif isinstance(stmt, Block):
            for s in stmt.stmts:
                scan_stmt(s, in_loop)
        elif isinstance(stmt, If):
            scan_expr(stmt.cond, in_loop, top=False)
            scan_stmt(stmt.then, in_loop)
            if stmt.els is not None:
                scan_stmt(stmt.els, in_loop)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                scan_stmt(stmt.init, True)
            scan_expr(stmt.cond, True, top=False)
            if stmt.update is not None:
                scan_stmt(stmt.update, True)
            scan_stmt(stmt.body, True)
        elif isinstance(stmt, While):
            scan_expr(stmt.cond, True, top=False)
            scan_stmt(stmt.body, True)

    scan_stmt(kernel.body, False)
    if sites and (aliasing or not resolvable):
        return False
    for name, lst in sites.items():
        if name not in elem_kind:
            return False
        if len(lst) == 1 and not lst[0][0]:
            continue
        if elem_kind[name] in ("i", "u", "b") and all(
            disc for _, disc in lst
        ):
            continue
        return False
    return True


def kernel_digest(kernel: Kernel) -> Optional[str]:
    """Content digest of a kernel: pretty-printed source (which includes
    ``#define`` constants and pragmas) hashed.  ``None`` when the AST cannot
    be printed — such kernels compile uncached."""
    try:
        source = emit_kernel(kernel)
    except Exception:
        return None
    return hashlib.sha256(source.encode()).hexdigest()


def _lower(
    kernel: Kernel, digest: Optional[str], profile: bool = False
) -> CompiledKernel:
    global _PROFILE_LOWERING
    prev = _PROFILE_LOWERING
    _PROFILE_LOWERING = profile
    try:
        body_fn, body_is_gen = compile_block(kernel.body)
    finally:
        _PROFILE_LOWERING = prev
    return CompiledKernel(
        kernel=kernel,
        digest=digest,
        body_fn=body_fn,
        body_is_gen=body_is_gen,
        uses_atomics=kernel_uses_atomics(kernel),
        profiled=profile,
    )


@dataclass
class CompileCacheStats:
    hits: int = 0
    misses: int = 0
    size: int = 0
    #: Process the counters belong to.  Forked scheduler workers inherit the
    #: parent's cache through copy-on-write but must not inherit its
    #: hit/miss history as their own — see :func:`_check_fork`.
    pid: int = 0
    #: Live cache entries broken down by lowering variant: plain per-block
    #: artifacts (``base``), profiled per-block artifacts (``prof``), and
    #: batched megablock artifacts of either flavor (``megablock``, cache
    #: keys carrying the ``#mb`` suffix).
    variants: dict = field(default_factory=dict)
    #: Aggregate disk-tier counters (all namespaces; zeros when no
    #: ``GPUSIM_CACHE_DIR`` / ``cache_dir`` is active) — see
    #: :mod:`repro.gpusim.diskcache`.
    disk: Optional[object] = None


def _variant_of(key: str) -> str:
    """Which lowering variant a cache key names (see key suffix scheme)."""
    if "#mb" in key:
        return "megablock"
    if key.endswith("#prof"):
        return "prof"
    return "base"


_CACHE: "OrderedDict[str, CompiledKernel]" = OrderedDict()
_CACHE_CAPACITY = 128
_CACHE_STATS = CompileCacheStats(pid=os.getpid())


def _check_fork() -> None:
    """Keep cache accounting honest across ``fork``.

    A forked worker inherits the parent's cache *contents* (copy-on-write
    artifacts genuinely serve hits in the child, so they stay) and also the
    parent's ``_CACHE_STATS`` counters — which would silently report the
    parent's compile history as the child's own.  On first cache use in a
    new process the counters restart at zero under the child's pid.
    """
    pid = os.getpid()
    if pid != _CACHE_STATS.pid:
        _CACHE_STATS.pid = pid
        _CACHE_STATS.hits = 0
        _CACHE_STATS.misses = 0


def _cache_get(key: str):
    """Shared LRU lookup (also used by the megablock lowering's ``#mb`` keys)
    so hit/miss accounting stays in one place."""
    _check_fork()
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE_STATS.hits += 1
        _CACHE.move_to_end(key)
        return cached
    _CACHE_STATS.misses += 1
    return None


def _cache_put(key: str, artifact) -> None:
    _CACHE[key] = artifact
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)
    _CACHE_STATS.size = len(_CACHE)


def compile_kernel(
    kernel: Kernel, cache: bool = True, profile: bool = False
) -> CompiledKernel:
    """Lower ``kernel`` to closures, reusing the digest-keyed LRU cache.

    Two structurally identical kernels (same pretty-printed source, including
    ``#define`` constants) share one compiled artifact; injector, sanitizer
    and synccheck plumbing is resolved from the runtime context, so a single
    artifact serves every launch mode.  ``profile=True`` lowers with the
    per-line issue hooks; profiled artifacts live under their own cache key
    so they never slow down non-profiled launches.
    """
    _check_fork()
    digest = kernel_digest(kernel) if cache else None
    if digest is None:
        return _lower(kernel, None, profile)
    key = digest + "#prof" if profile else digest
    cached = _cache_get(key)
    if cached is not None:
        return cached
    compiled = _lower(kernel, digest, profile)
    _cache_put(key, compiled)
    return compiled


def compile_cache_stats() -> CompileCacheStats:
    """Per-process cache counters (honest under forked workers: a child's
    counters restart at zero, its ``pid`` field says whose they are)."""
    _check_fork()
    _CACHE_STATS.size = len(_CACHE)
    variants = {"base": 0, "prof": 0, "megablock": 0}
    for key in _CACHE:
        variants[_variant_of(key)] += 1
    from .diskcache import disk_cache_stats

    return CompileCacheStats(
        hits=_CACHE_STATS.hits,
        misses=_CACHE_STATS.misses,
        size=len(_CACHE),
        pid=_CACHE_STATS.pid,
        variants=variants,
        disk=disk_cache_stats(),
    )


def clear_compile_cache() -> None:
    _check_fork()
    _CACHE.clear()
    _CACHE_STATS.hits = 0
    _CACHE_STATS.misses = 0
    _CACHE_STATS.size = 0
