"""Deterministic, seedable fault injection for the GPU simulator.

The hardened runtime is only trustworthy if every fault class it claims to
catch is *provably* caught, located, and contained.  This module plants
faults at well-defined interpreter hook points so the test suite can assert
exactly that:

- ``drop_launch``     — the launch never starts (device rejects it);
- ``global_oob``      — one lane's global element offset is pushed out of
  bounds, so the next access trips the global-memory bounds check;
- ``shared_oob``      — same for a shared-memory access;
- ``bit_flip``        — one bit of one lane's loaded value is flipped
  (silent data corruption: caught by functional output checks);
- ``shfl_lane``       — a ``__shfl`` source lane is redirected (corrupts
  warp communication in intra-warp NP variants);
- ``skip_sync``       — one lane is withheld from a ``__syncthreads``
  barrier, which the interpreter reports as a partial-block sync;
- ``miscoalesce``     — the byte addresses fed to the coalescing model are
  scattered, forcing worst-case transaction counts (a performance fault,
  visible in the statistics rather than as an exception).

Three further kinds target the *worker pool* rather than the simulated
machine, so every resilience behaviour of :mod:`repro.gpusim.pool` is
testable without real flakiness:

- ``worker_crash``    — the worker process running the targeted chunk dies
  (``os._exit``) after accepting it;
- ``worker_hang``     — the worker stops responding, so the pool's
  per-chunk deadline watchdog must kill and replace it;
- ``worker_slow``     — the worker sleeps :attr:`FaultSpec.delay` seconds
  before executing (a straggler, not a fault: it must *not* trip retries).

Worker faults are resolved in the parent at chunk dispatch time (see
:class:`WorkerFaultPlan`) so firing stays deterministic even though the
behaviour executes inside a worker process; each firing is recorded like
any other kind.

Every firing is appended to :attr:`FaultInjector.records` with a full
:class:`~repro.gpusim.diagnostics.FaultContext`, so even *silent* faults
(bit flips, shuffles, mis-coalescing) are attributable to the exact
kernel / block / warp / lane / source line after the fact.

Injection is deterministic: lane and bit choices come from a private
``random.Random(seed)`` consulted in execution order, so the same seed and
workload plant the same faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .diagnostics import FaultContext
from .errors import InjectedFault

#: Fault classes planted inside the simulated machine (interpreter hooks).
SIM_FAULT_KINDS = (
    "drop_launch",
    "global_oob",
    "shared_oob",
    "bit_flip",
    "shfl_lane",
    "skip_sync",
    "miscoalesce",
)

#: Fault classes planted in the parallel scheduler's worker processes.
WORKER_FAULT_KINDS = (
    "worker_crash",
    "worker_hang",
    "worker_slow",
)

#: All fault classes the injector can plant.
FAULT_KINDS = SIM_FAULT_KINDS + WORKER_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``None`` filters match anything; the injector fires at the first
    matching opportunity, at most ``count`` times.  ``launch_index``
    selects the n-th launch the injector observes (0-based) — the natural
    way to target one autotune variant out of many.
    """

    kind: str
    kernel: Optional[str] = None      # exact kernel-name match
    target: Optional[str] = None      # buffer / array name (memory faults)
    launch_index: Optional[int] = None
    block: Optional[int] = None       # linear block id
    warp: Optional[int] = None
    lane: Optional[int] = None        # None -> seeded pick among active lanes
    bit: Optional[int] = None         # bit to flip (bit_flip); seeded if None
    count: int = 1
    #: ``worker_slow`` straggler delay in seconds.
    delay: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired, with its located context."""

    kind: str
    ctx: FaultContext
    detail: str = ""

    def summary(self) -> str:
        return f"injected {self.kind}: {self.detail} [{self.ctx.where()}]"


class FaultInjector:
    """Plants the faults described by a list of :class:`FaultSpec`.

    Pass an injector to ``launch(..., faults=injector)``; the interpreter
    consults it at each hook point.  Thread-block and warp filters, lane
    picks, and bit picks are resolved deterministically from ``seed``.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._fired = [0] * len(self.specs)
        self._launch_index = -1  # incremented by begin_launch
        self.records: list[InjectionRecord] = []

    @classmethod
    def single(cls, kind: str, seed: int = 0, **spec_kwargs) -> "FaultInjector":
        """Convenience: an injector planting exactly one fault."""
        return cls([FaultSpec(kind=kind, **spec_kwargs)], seed=seed)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def launch_index(self) -> int:
        """Index of the launch currently executing (0-based)."""
        return self._launch_index

    def fired(self, kind: Optional[str] = None) -> int:
        """How many faults fired so far (optionally of one kind)."""
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind == kind)

    def worker_only(self) -> bool:
        """True when every planted spec targets the worker pool.

        Such an injector never needs interpreter hooks, so the launch may
        still go parallel — the pool resolves the specs at dispatch time.
        An injector with *no* specs is not worker-only: it keeps the
        conservative sequential fallback it always had.
        """
        return bool(self.specs) and all(
            s.kind in WORKER_FAULT_KINDS for s in self.specs
        )

    def _match(self, kind: str, kernel: str, target: Optional[str] = None,
               block: Optional[int] = None, warp: Optional[int] = None):
        """First armed spec matching this site, or None."""
        for i, spec in enumerate(self.specs):
            if spec.kind != kind or self._fired[i] >= spec.count:
                continue
            if spec.kernel is not None and spec.kernel != kernel:
                continue
            if spec.target is not None and spec.target != target:
                continue
            if spec.launch_index is not None and spec.launch_index != self._launch_index:
                continue
            if spec.block is not None and block is not None and spec.block != block:
                continue
            if spec.warp is not None and warp is not None and spec.warp != warp:
                continue
            return i, spec
        return None

    def _record(self, kind: str, ctx: FaultContext, detail: str) -> None:
        self.records.append(InjectionRecord(kind=kind, ctx=ctx, detail=detail))

    def _pick_lane(self, spec: FaultSpec, mask: np.ndarray) -> Optional[int]:
        active = np.nonzero(mask)[0]
        if active.size == 0:
            return None
        if spec.lane is not None:
            return spec.lane if mask[spec.lane] else None
        return int(self._rng.choice(active.tolist()))

    def was_planted(self, exc: BaseException) -> bool:
        """Did this injector plant the corruption behind ``exc``?

        Matches the exception's structured buffer/lane fields against the
        injection log, so naturally occurring faults in the same run are not
        mislabelled as injected.
        """
        lanes = set(getattr(exc, "lanes", ()) or ())
        buffer = getattr(exc, "buffer", None)
        for r in self.records:
            if buffer is not None:
                if r.ctx.buffer == buffer and (
                    not lanes or not r.ctx.lanes or set(r.ctx.lanes) & lanes
                ):
                    return True
            elif lanes and set(r.ctx.lanes) & lanes:
                return True
        return False

    # -- hook points (called by launch / the interpreter) --------------------

    def begin_launch(self, kernel: str, grid, block) -> None:
        """Called once per launch; raises to drop the launch entirely."""
        self._launch_index += 1
        hit = self._match("drop_launch", kernel)
        if hit is None:
            return
        i, _spec = hit
        self._fired[i] += 1
        ctx = FaultContext(kernel=kernel, grid=grid, block_dim=block, injected=True)
        self._record("drop_launch", ctx, f"launch #{self._launch_index} dropped")
        raise InjectedFault(
            f"injected fault: launch of kernel {kernel!r} dropped", ctx=ctx
        )

    def corrupt_index(self, site, space: str, name: str, offsets: np.ndarray,
                      mask: np.ndarray, size: int) -> np.ndarray:
        """Push one lane's element offset out of bounds (global/shared OOB)."""
        kind = "global_oob" if space == "global" else "shared_oob"
        hit = self._match(kind, site.kernel_name, target=name,
                          block=site.linear_block, warp=site.warp_idx)
        if hit is None:
            return offsets
        i, spec = hit
        lane = self._pick_lane(spec, mask)
        if lane is None:
            return offsets
        self._fired[i] += 1
        corrupted = offsets.copy()
        corrupted[lane] = size + 0xBAD
        ctx = site.make_context(
            lanes=(lane,), space=space, buffer=name, index=int(corrupted[lane]),
            limit=size, injected=True,
        )
        self._record(kind, ctx, f"{space} offset of lane {lane} -> {int(corrupted[lane])}")
        return corrupted

    def flip_bits(self, site, space: str, name: str, values: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
        """Flip one bit of one lane's loaded value (silent corruption)."""
        hit = self._match("bit_flip", site.kernel_name, target=name,
                          block=site.linear_block, warp=site.warp_idx)
        if hit is None:
            return values
        i, spec = hit
        lane = self._pick_lane(spec, mask)
        if lane is None:
            return values
        self._fired[i] += 1
        values = np.array(values, copy=True)
        itembits = values.dtype.itemsize * 8
        bit = spec.bit if spec.bit is not None else self._rng.randrange(itembits)
        raw = values.view(np.uint32 if itembits == 32 else np.uint8)
        if itembits == 32:
            raw[lane] ^= np.uint32(1 << bit)
        else:  # pragma: no cover - only 32-bit dtypes exist in the subset
            raw[lane * values.dtype.itemsize] ^= np.uint8(1 << (bit % 8))
        ctx = site.make_context(
            lanes=(lane,), space=space, buffer=name, injected=True,
        )
        self._record("bit_flip", ctx, f"flipped bit {bit} of lane {lane} in {name!r}")
        return values

    def corrupt_shfl_lane(self, site, lane_ids: np.ndarray, width: int) -> np.ndarray:
        """Redirect one lane's ``__shfl`` source lane."""
        hit = self._match("shfl_lane", site.kernel_name,
                          block=site.linear_block, warp=site.warp_idx)
        if hit is None:
            return lane_ids
        i, spec = hit
        mask = site.current_mask
        lane = self._pick_lane(spec, mask)
        if lane is None:
            return lane_ids
        self._fired[i] += 1
        lane_ids = np.array(lane_ids, copy=True)
        original = int(lane_ids[lane])
        lane_ids[lane] = (original + 1 + self._rng.randrange(max(width - 1, 1))) % width
        ctx = site.make_context(lanes=(lane,), injected=True)
        self._record(
            "shfl_lane", ctx,
            f"lane {lane} __shfl source {original} -> {int(lane_ids[lane])}",
        )
        return lane_ids

    def sync_skip_lanes(self, site, mask: np.ndarray) -> Optional[np.ndarray]:
        """Lanes to withhold from the next ``__syncthreads`` (or None)."""
        hit = self._match("skip_sync", site.kernel_name,
                          block=site.linear_block, warp=site.warp_idx)
        if hit is None:
            return None
        i, spec = hit
        lane = self._pick_lane(spec, mask)
        if lane is None:
            return None
        self._fired[i] += 1
        skip = np.zeros_like(mask)
        skip[lane] = True
        ctx = site.make_context(lanes=(lane,), injected=True)
        self._record("skip_sync", ctx, f"lane {lane} withheld from __syncthreads")
        return skip

    def poll_worker_fault(self, kernel: str, chunk_index: int,
                          blocks: Sequence[int],
                          worker_pid: Optional[int] = None):
        """Arm-and-consume one worker fault for a chunk about to dispatch.

        Called by the scheduler in the *parent* process each time a chunk is
        handed to a worker (including re-dispatches after a fault), so
        firing order is deterministic regardless of worker timing.  A spec
        matches when its ``block`` filter is unset or names a linear block
        inside the chunk.  Returns ``(kind, delay)`` or ``None``.
        """
        blockset = set(int(b) for b in blocks)
        for i, spec in enumerate(self.specs):
            if spec.kind not in WORKER_FAULT_KINDS or self._fired[i] >= spec.count:
                continue
            if spec.kernel is not None and spec.kernel != kernel:
                continue
            if spec.launch_index is not None and spec.launch_index != self._launch_index:
                continue
            if spec.block is not None and spec.block not in blockset:
                continue
            self._fired[i] += 1
            ctx = FaultContext(kernel=kernel, injected=True)
            who = f"worker pid {worker_pid}" if worker_pid else "worker"
            self._record(
                spec.kind, ctx,
                f"{who} chunk {chunk_index} "
                f"(blocks {min(blockset)}..{max(blockset)})",
            )
            return spec.kind, spec.delay
        return None

    def corrupt_addrs(self, site, space: str, name: str, addrs: np.ndarray,
                      mask: np.ndarray) -> np.ndarray:
        """Scatter the byte addresses seen by the coalescing model."""
        hit = self._match("miscoalesce", site.kernel_name, target=name,
                          block=site.linear_block, warp=site.warp_idx)
        if hit is None:
            return addrs
        i, _spec = hit
        self._fired[i] += 1
        # One 128-byte segment per lane: the worst case the model can see.
        scattered = addrs + np.arange(addrs.size, dtype=np.int64) * 4096
        ctx = site.make_context(space=space, buffer=name, injected=True)
        self._record("miscoalesce", ctx, f"scattered {space} addresses of {name!r}")
        return scattered
