"""Analytical kernel-time model (Hong & Kim, ISCA'09 — the paper's ref [14]).

The interpreter produces per-warp averages of computation instructions and
memory instructions/transactions.  This module combines them with the
occupancy result to estimate kernel execution cycles through the MWP/CWP
(memory/computation warp parallelism) framework:

- **MWP** — how many warps can overlap their memory requests, limited by the
  memory latency / departure delay ratio, by peak DRAM bandwidth, and by the
  number of resident warps;
- **CWP** — how many warps' compute periods fit in one memory period.

Three regimes fall out (memory-bound, compute-bound, balanced), which is
exactly the mechanism CUDA-NP exploits: raising resident-warp counts on
latency-bound kernels until they become bandwidth- or compute-bound.

Local-memory (spilled array) traffic first goes through the L1 capacity
model; hits cost ``l1_latency`` (folded into compute cycles), misses become
DRAM memory instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .cache import CapacityModel
from .device import DeviceSpec
from .occupancy import Occupancy, ResourceUsage
from .stats import KernelStats


@dataclass(frozen=True)
class TimingResult:
    """Estimated execution time and the model internals that produced it."""

    cycles: float
    seconds: float
    bound: str                  # 'memory' | 'compute' | 'balanced' | 'idle'
    active_warps_per_smx: int
    mwp: float
    cwp: float
    repetitions: float
    comp_cycles_per_warp: float
    mem_cycles_per_warp: float
    l1_hit_rate: float
    dram_bytes: float
    achieved_bandwidth_gbs: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def estimate_kernel_time(
    device: DeviceSpec,
    stats: KernelStats,
    occupancy: Occupancy,
    usage: ResourceUsage,
    total_warps: int | None = None,
) -> TimingResult:
    """Estimate kernel time for a launch whose events are in ``stats``.

    ``total_warps`` defaults to the executed warp count; pass the full-grid
    value when ``stats`` was collected from a sample of blocks and already
    rescaled.
    """
    if total_warps is None:
        total_warps = stats.warps_executed
    if total_warps <= 0:
        return TimingResult(
            0.0, 0.0, "idle", 0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0
        )

    pw = stats.per_warp()

    # Resident warps per SMX: occupancy-limited, then trimmed when the grid
    # cannot even fill one wave (small-grid effect, key for Fig. 13/14).
    n_occ = max(occupancy.warps_per_smx(device.warp_size), 1)
    n_fill = max(1, math.ceil(total_warps / device.num_smx))
    n = min(n_occ, n_fill)

    # --- Local memory through the L1 capacity model -----------------------
    l1 = CapacityModel(device.l1_size)
    resident_threads = min(
        occupancy.threads_per_smx,
        n * device.warp_size,
    )
    hit_rate = l1.hit_rate(usage.local_bytes_per_thread, resident_threads)
    local_dram_insts = pw.local_mem_insts * (1.0 - hit_rate)
    local_dram_txns = pw.local_transactions * (1.0 - hit_rate)
    local_hit_insts = pw.local_mem_insts * hit_rate

    # --- Per-warp cycle components ----------------------------------------
    comp_cycles = (
        pw.comp_insts * device.issue_cycles_per_inst
        # L1 hits are pipelined short-latency ops; a fraction of the latency
        # shows up as stall because in-warp dependence chains are short.
        + local_hit_insts * (device.l1_latency_cycles / 4.0)
        # Every memory instruction still occupies an issue slot.
        + (pw.global_mem_insts + pw.local_mem_insts) * device.issue_cycles_per_inst
    )
    comp_cycles = max(comp_cycles, 1.0)

    mem_insts = pw.global_mem_insts + local_dram_insts
    mem_txns = pw.global_transactions + local_dram_txns

    # Below ~issue_saturation_warps resident warps, dependent instruction
    # chains leave pipeline bubbles: a wave of n warps takes as long as a
    # saturating wave would (the idle slots are wasted, not reclaimed).
    n_issue = max(n, device.issue_saturation_warps)

    # DRAM traffic is defined by the recorded transactions, independent of
    # which latency regime the kernel lands in — a kernel can reach the
    # zero-memory-instruction branch below with nonzero transactions (e.g.
    # texture fetches), and must still report its bytes honestly.
    dram_bytes = (
        stats.global_transactions + stats.local_transactions * (1.0 - hit_rate)
    ) * device.transaction_bytes
    # Rescale to the modeled total if stats cover fewer warps than total.
    if stats.warps_executed and total_warps != stats.warps_executed:
        dram_bytes *= total_warps / stats.warps_executed

    if mem_insts <= 0.0:
        # Pure compute kernel: SMX issue pipelines saturate.
        rep = max(1.0, total_warps / (n * device.num_smx))
        cycles = comp_cycles * n_issue * rep
        seconds = device.cycles_to_seconds(cycles)
        return TimingResult(
            cycles=cycles,
            seconds=seconds,
            bound="compute",
            active_warps_per_smx=n,
            mwp=float(n),
            cwp=float(n),
            repetitions=rep,
            comp_cycles_per_warp=comp_cycles,
            mem_cycles_per_warp=0.0,
            l1_hit_rate=hit_rate,
            dram_bytes=dram_bytes,
            achieved_bandwidth_gbs=(
                dram_bytes / seconds / 1e9 if seconds > 0 else 0.0
            ),
        )

    mem_cycles = device.mem_latency_cycles * mem_insts

    txns_per_inst = max(mem_txns / mem_insts, 1.0)
    departure_delay = device.departure_delay_cycles * txns_per_inst

    mwp_without_bw = min(device.mem_latency_cycles / departure_delay, float(n))

    # Bandwidth-limited MWP (Hong–Kim eq. for MWP_peak_BW).
    bytes_per_mem_inst = txns_per_inst * device.transaction_bytes
    bw_per_warp_gbs = (
        device.core_clock_ghz * bytes_per_mem_inst / device.mem_latency_cycles
    )
    mwp_peak_bw = device.mem_bandwidth_gbs / (bw_per_warp_gbs * device.num_smx)

    mwp = max(1.0, min(mwp_without_bw, mwp_peak_bw, float(n)))
    cwp_full = (mem_cycles + comp_cycles) / comp_cycles
    cwp = min(cwp_full, float(n))

    # Blocks stream onto SMXs as predecessors retire, so the wave count is
    # continuous (clamped below by one full pass through the pipeline).
    rep = max(1.0, total_warps / (n * device.num_smx))
    comp_per_mem = comp_cycles / mem_insts

    if abs(mwp - n) < 1e-9 and abs(cwp - n) < 1e-9:
        bound = "balanced"
        period = mem_cycles + comp_cycles + comp_per_mem * (mwp - 1.0)
    elif cwp >= mwp:
        bound = "memory"
        period = mem_cycles * (n / mwp) + comp_per_mem * (mwp - 1.0)
    else:
        bound = "compute"
        period = device.mem_latency_cycles + comp_cycles * n_issue

    # Issue-work floor: a wave cannot retire faster than its instructions
    # issue, and below the saturation warp count dependent chains leave
    # bubbles that stretch the wave to a saturating wave's length.
    issue_floor = comp_cycles * n_issue
    if period < issue_floor:
        period = issue_floor
        bound = "compute"

    cycles = period * rep
    seconds = device.cycles_to_seconds(cycles)
    achieved_bw = dram_bytes / seconds / 1e9 if seconds > 0 else 0.0

    return TimingResult(
        cycles=cycles,
        seconds=seconds,
        bound=bound,
        active_warps_per_smx=n,
        mwp=mwp,
        cwp=cwp,
        repetitions=rep,
        comp_cycles_per_warp=comp_cycles,
        mem_cycles_per_warp=mem_cycles,
        l1_hit_rate=hit_rate,
        dram_bytes=dram_bytes,
        achieved_bandwidth_gbs=achieved_bw,
    )
