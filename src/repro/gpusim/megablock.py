"""Batch-vectorized "megablock" execution engine.

The compiled backend (:mod:`repro.gpusim.compile`) removed per-statement
dispatch but still runs blocks one at a time: every closure executes over a
``(WARP_SIZE,)`` lane vector, once per block.  For independent blocks — the
same condition the parallel scheduler already detects — that outer Python
loop is pure overhead.  This module lowers the *block loop itself* into an
ndarray axis: all blocks' lanes stack into ``(blocks, WARP_SIZE)`` arrays
(one "mega-warp" per warp slot) and each statement closure runs exactly once
for the entire batch.

The lowering here is a statement-for-statement mirror of ``compile.py`` with
a leading block axis:

* **Masks** are ``(blocks, lanes)``; a block whose row goes empty simply
  stops contributing — loops keep running until *no* block has active lanes,
  and every cost hook scales by the number of non-empty rows so counters
  stay bit-identical to the per-block engines.
* **Stats** that the per-block engine bumps by a constant per execution
  (``alu_insts += w``, ``global_load_insts += 1`` …) become ``+= w * rows``
  where ``rows`` counts blocks with at least one active lane.  Per-block
  execution never runs a statement under an empty mask, so ``rows`` is
  exactly the number of blocks that would have executed it.  All instruction
  weights are integer-valued floats, so the batched partial sums are exact.
* **Per-row reductions** replace the per-block coalescing/bank-conflict
  scalars: a sentinel sort counts distinct 128-byte segments per row, a
  sort + bincount finds the worst shared-memory bank degree per row, and a
  masked min/max detects constant-memory broadcasts per row.
* **Shared/local memory** materializes as one ``(blocks, …)`` slab per
  declaration (:class:`~repro.gpusim.memory.BatchedSharedArray` /
  ``BatchedLocalArray``) with the same per-block byte addressing, so replay
  and transaction accounting match the per-block engines bit-for-bit.
* **Barriers** keep the generator yield protocol: one stacked generator per
  mega-warp, round-robined exactly like ``BlockExecutor._run_block``.
* **Megawarp flattening** (:func:`megablock_flatten`) goes one step
  further for multi-warp blocks: the ``(blocks, warps)`` pair collapses
  into a single row axis of ``blocks * warps`` rows (block-major, matching
  the sequential engines' issue order), so each statement closure runs once
  for the *entire grid* instead of once per warp slot.  Barriers become
  trivially satisfied lockstep points over the flattened axis; kernels
  whose barrier placement depends on the per-warp round-robin
  (``__syncthreads`` under divergent branches) keep the slotted form.
* **Atomics** lower into a deterministic segmented reduce
  (:func:`_mb_atomic_apply`): active lanes sort stably by address and fold
  in ascending (row, lane) order as a strict sequential left fold, so
  final memory bytes, returned old values, and the
  ``atomic_serializations`` counter all match the per-warp engines
  bit-for-bit.  That replay is only exact when the kernel's atomic traffic
  is order-free (:func:`~repro.gpusim.compile.kernel_atomic_order_free`);
  order-sensitive kernels take the launcher's ``"atomic-order"`` fallback.

Batching is *speculative*: anything the batched semantics cannot reproduce
exactly — block-varying shuffle widths, order-sensitive atomics, any
``SimError`` raised mid-batch — aborts the whole megablock run, and the
launcher restores the pre-launch global-memory snapshot and re-runs per
block with the compiled engine.  A spurious batched fault therefore costs
only time, never correctness, and real faults surface with their exact
per-block diagnostics.

Compiled megablock artifacts live in the same digest-keyed LRU as the
per-block artifacts under ``#mb`` / ``#mb#prof`` key suffixes
(:func:`compile_megablock`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from ..minicuda.nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Kernel,
    Member,
    Name,
    PointerType,
    Return,
    ScalarType,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
)
from ..prof.counters import KernelProfile, LineCounters, _line_of
from .compile import (
    FAST_BINARY_IMPLS,
    _and_not,
    _cache_get,
    _cache_put,
    _compile_literal,
    _compile_name,
    _fast_flat_index,
    _mask_any,
    _plain_iterator,
    _raising,
    _stmt_loc,
    kernel_atomic_order_free,
    kernel_digest,
    kernel_flatten_safe,
    kernel_uses_atomics,
)
from .errors import IntrinsicError, MemoryFault, SimError, SyncError
from .interp import (
    WARP_SIZE,
    WarpScaffold,
    _broadcast,
    _pointer_arith,
    _resolve_index_chain,
    PointerValue,
)
from .intrinsics import (
    BINOP_WEIGHTS,
    DEFAULT_BINOP_WEIGHT,
    MATH_INTRINSICS,
    _check_width,
)
from .memory import (
    BatchedLocalArray,
    BatchedSharedArray,
    ConstArray,
    GlobalBuffer,
    dtype_for,
)

#: ``ExprFn(ctx, mask) -> ndarray | PointerValue | memory object`` where
#: ``mask`` is ``(blocks, WARP_SIZE)``; values broadcast between
#: ``(WARP_SIZE,)`` (block-invariant) and ``(blocks, WARP_SIZE)``.
ExprFn = Callable[["MegaContext", np.ndarray], object]
StmtFn = Callable[["MegaContext", np.ndarray], object]

_LANES = np.arange(WARP_SIZE)
_LANES_I64 = np.arange(WARP_SIZE, dtype=np.int64)
_I64_MAX = np.iinfo(np.int64).max


# ---------------------------------------------------------------------------
# Per-row batched stat reductions
#
# Each mirrors one per-block scalar from compile.py's fast path, computed for
# every row of the batch at once.  Rows with no active lanes reduce to zero.
# ---------------------------------------------------------------------------


def _batch_txns(byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Distinct 128-byte segments per row (``_fast_txns`` per block)."""
    segs = np.where(mask, byte_addrs // 128, _I64_MAX)  # fresh, writable
    segs.sort(axis=1)
    row_any = segs[:, 0] != _I64_MAX
    fresh = (segs[:, 1:] != segs[:, :-1]) & (segs[:, 1:] != _I64_MAX)
    return row_any.astype(np.int64) + fresh.sum(axis=1)


def _batch_global_stats(
    byte_addrs: np.ndarray,
    mask: np.ndarray,
    elem_bytes: int,
    active_rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``(transactions, uncoalesced)`` — ``_fast_global_stats``.

    ``active * elem_bytes`` is at most 256, so the integer ceiling equals the
    per-block float ``np.ceil`` exactly.  Empty rows: 0 transactions,
    coalesced (``0 > max(0, 1)`` is false), matching the per-block
    ``(0, True)`` early-out.
    """
    txns = _batch_txns(byte_addrs, mask)
    needed = (active_rows * elem_bytes + 127) // 128
    uncoalesced = txns > np.maximum(needed, 1)
    return txns, uncoalesced


def _batch_bank_replays(byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Worst-bank replay count per row (``_fast_bank_replays`` per block):
    distinct 4-byte words per bank, worst bank sets the pass count."""
    words = np.where(mask, byte_addrs // 4, _I64_MAX)
    words.sort(axis=1)
    valid = words != _I64_MAX
    uniq = valid.copy()
    uniq[:, 1:] &= words[:, 1:] != words[:, :-1]
    nwords = uniq.sum(axis=1)
    nblocks = mask.shape[0]
    banks = words % 32
    keys = np.where(uniq, np.arange(nblocks)[:, None] * 32 + banks, nblocks * 32)
    counts = np.bincount(keys.ravel(), minlength=nblocks * 32 + 1)
    counts = counts[: nblocks * 32].reshape(nblocks, 32)
    max_degree = counts.max(axis=1)
    return np.where(nwords <= 1, 0, np.maximum(max_degree - 1, 0))


def _batch_const_serialized(byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row ``not coalescing.broadcast_segments`` (all-equal address
    test); empty rows are broadcast-friendly like the per-block early-out."""
    addrs = np.broadcast_to(byte_addrs, mask.shape)
    lo = np.where(mask, addrs, _I64_MAX).min(axis=1)
    hi = np.where(mask, addrs, -1).max(axis=1)
    return (lo != hi) & mask.any(axis=1)


def _batch_distinct(addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Distinct exact addresses per row — the batched form of the per-warp
    ``np.unique(offsets).size`` in :func:`interp._atomic_add`'s
    serialization accounting (``_batch_txns`` without the /128 segmenting)."""
    vals = np.where(mask, addrs, _I64_MAX)  # fresh, writable
    vals.sort(axis=1)
    row_any = vals[:, 0] != _I64_MAX
    fresh = (vals[:, 1:] != vals[:, :-1]) & (vals[:, 1:] != _I64_MAX)
    return row_any.astype(np.int64) + fresh.sum(axis=1)


# ---------------------------------------------------------------------------
# Deterministic batched atomics
#
# ``atomicAdd`` over the whole flattened batch reduces to: sort the active
# (row-major = sequential block/warp/lane order) elements by address, then
# left-fold each address group sequentially.  Because ``np.add.accumulate``
# is a strict left fold (no pairwise regrouping) and the stable sort keeps
# the sequential order within each group, both the final memory values and
# every lane's returned "old" value are bit-identical to the per-warp
# ``np.add.at`` issues of sequential execution — including float32 rounding.
# ---------------------------------------------------------------------------


def _group_prefix_fold(
    init_vals: np.ndarray,
    deltas: np.ndarray,
    lens: np.ndarray,
    gidx: np.ndarray,
    pos: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential per-group left fold.

    ``init_vals[g]`` seeds group ``g``; ``deltas`` are the sorted per-element
    addends, with ``gidx``/``pos`` giving each element's group and position.
    Returns ``(prefix, totals)``: the accumulator value *before* each element
    and the final value per group.  Groups are bucketed by power-of-two
    padded length into ``(groups, P + 1)`` matrices (column 0 holds the
    seed), so memory stays O(n) even under power-law collision skew; the
    trailing zero padding sits after every real delta, which leaves the
    prefixes — and, read at its exact length, each total — untouched.
    """
    dtype = deltas.dtype
    n = deltas.size
    prefix = np.empty(n, dtype=dtype)
    totals = np.empty(lens.size, dtype=dtype)
    arange_n = np.arange(n)
    maxlen = int(lens.max())
    done = np.zeros(lens.size, dtype=bool)
    cap = 1
    while True:
        sel = ~done & (lens <= cap)
        if sel.any():
            idx_g = np.nonzero(sel)[0]
            g = idx_g.size
            local = np.empty(lens.size, dtype=np.int64)
            local[idx_g] = np.arange(g)
            esel = sel[gidx]
            er = local[gidx[esel]]
            ec = pos[esel] + 1
            matrix = np.zeros((g, cap + 1), dtype=dtype)
            matrix[:, 0] = init_vals[idx_g]
            matrix[er, ec] = deltas[esel]
            acc = np.add.accumulate(matrix, axis=1)
            prefix[esel] = acc[er, ec - 1]
            totals[idx_g] = acc[np.arange(g), lens[idx_g]]
            done |= sel
        if cap >= maxlen:
            break
        cap *= 2
    return prefix, totals


def _mb_atomic_apply(data: np.ndarray, addrs, mask: np.ndarray, delta):
    """Apply one batched ``atomicAdd`` issue to the 1-D view ``data``.

    Mirrors the sequential per-warp semantics exactly: every lane's "old"
    value is the memory value at the start of its own row's issue (all lanes
    of one row observe the same pre-issue value, like the per-warp
    ``data[offsets].copy()`` before ``np.add.at``), and deltas accumulate in
    ascending (row, lane) order.
    """
    dtype = data.dtype
    out = np.zeros(mask.shape, dtype=dtype)
    if not _mask_any(mask):
        return out
    a = np.broadcast_to(addrs, mask.shape)[mask]
    d = np.broadcast_to(np.asarray(delta), mask.shape)[mask].astype(
        dtype, copy=False
    )
    row_e = np.nonzero(mask)[0]  # row per element, row-major like a/d
    n = a.size
    order = np.argsort(a, kind="stable")
    a_s = a[order]
    d_s = d[order]
    r_s = row_e[order]
    gstart = np.empty(n, dtype=bool)
    gstart[0] = True
    gstart[1:] = a_s[1:] != a_s[:-1]
    starts = np.nonzero(gstart)[0]
    lens = np.diff(np.append(starts, n))
    gidx = np.cumsum(gstart) - 1
    pos = np.arange(n) - starts[gidx]
    init_vals = data[a_s[starts]]
    prefix, totals = _group_prefix_fold(init_vals, d_s, lens, gidx, pos)
    # Old value = accumulator at the first element of this (group, row) run.
    rstart = gstart.copy()
    rstart[1:] |= r_s[1:] != r_s[:-1]
    run_first = np.maximum.accumulate(np.where(rstart, np.arange(n), 0))
    old_s = prefix[run_first]
    data[a_s[starts]] = totals
    old = np.empty(n, dtype=dtype)
    old[order] = old_s
    out[mask] = old
    return out


def _mb_atomic_add(ctx: "MegaContext", root, indices: list, mask: np.ndarray, delta):
    """Batched ``atomicAdd`` dispatch (global / shared), with the same
    serialization accounting as :func:`interp._atomic_add` per row."""
    stats = ctx.stats
    if isinstance(root, PointerValue):
        if len(indices) != 1:
            raise MemoryFault("global pointers are 1-D; use manual 2-D math")
        buf = root.buffer
        offsets = (root.offsets + indices[0]).astype(np.int64, copy=False)
        bad = mask & ((offsets < 0) | (offsets >= buf.data.size))
        if bad.any():
            raise _mb_bounds_fault(
                buf.name, "global", offsets, mask, buf.data.size
            )
        stats.atomic_serializations += int(mask.sum()) - int(
            _batch_distinct(offsets, mask).sum()
        )
        return _mb_atomic_apply(buf.data, offsets, mask, delta)
    if isinstance(root, BatchedSharedArray):
        flat = _fast_flat_index(root, indices)
        bad = mask & ((flat < 0) | (flat >= root.numel))
        if bad.any():
            raise _mb_bounds_fault(root.name, "shared", flat, mask, root.numel)
        # Key = slab_row * numel + flat: distinct blocks never collide, and
        # all warps of one block fold into that block's slab row.
        keys = root.batch_rows()[:, None] * root.numel + flat
        stats.atomic_serializations += int(mask.sum()) - int(
            _batch_distinct(keys, mask).sum()
        )
        return _mb_atomic_apply(root.data.reshape(-1), keys, mask, delta)
    raise IntrinsicError("atomicAdd target must be global or shared memory")


# ---------------------------------------------------------------------------
# Batched memory accessors
#
# Bounds faults raise generic MemoryFaults here: any SimError aborts the
# megablock run and the per-block rerun reproduces the exact located fault.
# ---------------------------------------------------------------------------


def _mb_bounds_fault(name: str, space: str, idx, mask, limit: int) -> MemoryFault:
    bad = np.broadcast_to(idx, mask.shape)[mask & ((idx < 0) | (idx >= limit))]
    return MemoryFault(
        f"{space} buffer {name!r}: index out of range (size {limit})",
        space=space,
        buffer=name,
        index=int(bad[0]),
        limit=limit,
    )


def _mb_global_load(buf: GlobalBuffer, offsets, mask) -> np.ndarray:
    data = buf.data
    bad = mask & ((offsets < 0) | (offsets >= data.size))
    if bad.any():
        raise _mb_bounds_fault(buf.name, "global", offsets, mask, data.size)
    return data[np.where(mask, offsets, 0)]


def _mb_global_store(buf: GlobalBuffer, offsets, mask, values) -> None:
    data = buf.data
    bad = mask & ((offsets < 0) | (offsets >= data.size))
    if bad.any():
        raise _mb_bounds_fault(buf.name, "global", offsets, mask, data.size)
    offsets_b = np.broadcast_to(offsets, mask.shape)
    values_b = np.broadcast_to(values, mask.shape)
    # Row-major flatten scatters ascending block order: the same last-writer-
    # wins order as the sequential per-block loop.
    data[offsets_b[mask]] = values_b[mask].astype(data.dtype, copy=False)


def _mb_local_byte_addrs(root: BatchedLocalArray, idx) -> np.ndarray:
    return root.base_addr + (
        idx.astype(np.int64, copy=False) * root.warp_size + _LANES_I64
    ) * root.itemsize


def _mb_tex_load(tex, idx, mask) -> np.ndarray:
    data = tex.data
    bad = mask & ((idx < 0) | (idx >= data.size))
    if bad.any():
        raise _mb_bounds_fault(tex.name, "global", idx, mask, data.size)
    return data[np.where(mask, idx, 0)]


# ---------------------------------------------------------------------------
# Batched shuffles
#
# Shuffle width (and shfl_up/down delta) is a per-warp scalar in the
# per-block engines (``int(arr[0])``).  When the batched operand varies by
# block the batch cannot express it in one gather — abort to the fallback.
# ---------------------------------------------------------------------------


def _uniform_int(arr) -> int:
    arr = np.asarray(arr)
    if arr.ndim <= 1:
        return int(arr.flat[0])
    first = arr[:, 0]
    if (first != first[0]).any():
        raise SimError("megablock: shuffle operand varies across blocks")
    return int(first[0])


def _mb_shfl(values, lane_id, lane_size: int) -> np.ndarray:
    _check_width("__shfl", lane_size, WARP_SIZE)
    src = (_LANES // lane_size) * lane_size + np.asarray(lane_id) % lane_size
    values = np.asarray(values)
    if src.ndim <= 1:
        return values[..., src]
    if values.ndim < src.ndim:
        values = np.broadcast_to(values, src.shape)
    return np.take_along_axis(values, src, axis=-1)


def _mb_shfl_shift(values, delta: int, lane_size: int, down: bool) -> np.ndarray:
    _check_width("__shfl_down" if down else "__shfl_up", lane_size, WARP_SIZE)
    group = _LANES // lane_size
    pos = _LANES % lane_size
    moved = pos + delta if down else pos - delta
    in_range = moved < lane_size if down else moved >= 0
    src = group * lane_size + np.where(in_range, moved, pos)
    return np.asarray(values)[..., src]


# ---------------------------------------------------------------------------
# Batched profile adapter
# ---------------------------------------------------------------------------


class MegaProfile:
    """Accumulates batched profile counters, then reduces them into a
    :class:`~repro.prof.counters.KernelProfile` identical to what the
    per-block engines would have produced for the same blocks.

    Line counters take the already-reduced row counts directly; the only
    per-block state a profile carries — ``BlockCost.inst_issues`` and
    ``.transactions`` — accumulates in two ``(blocks,)`` vectors and splits
    back into per-block records in :meth:`finish`.
    """

    def __init__(
        self, kernel_name: str, block_ids, num_warps: int, threads: int
    ):
        self.kernel = kernel_name
        self.block_ids = [int(b) for b in block_ids]
        self.num_warps = num_warps
        self.threads = threads
        self.lines: Dict[int, LineCounters] = {}
        nblocks = len(self.block_ids)
        self.rows_per_block = 1
        self.blk_issues = np.zeros(nblocks, dtype=np.int64)
        self.blk_txns = np.zeros(nblocks, dtype=np.int64)

    def set_rows_per_block(self, rows: int) -> None:
        """Switch to the flattened (megawarp) row layout: ``rows`` batch rows
        per block, block-major, folded back per block in :meth:`finish`.
        The executor calls this before the first statement hook fires."""
        self.rows_per_block = rows
        n = len(self.block_ids) * rows
        self.blk_issues = np.zeros(n, dtype=np.int64)
        self.blk_txns = np.zeros(n, dtype=np.int64)

    def _line(self, line: int) -> LineCounters:
        lc = self.lines.get(line)
        if lc is None:
            lc = self.lines[line] = LineCounters()
        return lc

    def stmt_rows(
        self, line: int, rows: int, active: int, row_any: np.ndarray
    ) -> None:
        lc = self._line(line)
        lc.inst_issues += rows
        lc.thread_issues += active
        self.blk_issues += row_any

    def divergent_n(self, line: int, n: int) -> None:
        self._line(line).divergent_branches += n

    def global_access_rows(
        self, loc, rows: int, txns_rows: np.ndarray, uncoalesced: int, store: bool
    ) -> None:
        lc = self._line(_line_of(loc))
        if store:
            lc.global_store_insts += rows
        else:
            lc.global_load_insts += rows
        lc.global_transactions += int(txns_rows.sum())
        lc.uncoalesced_accesses += uncoalesced
        self.blk_txns += txns_rows

    def shared_access_rows(self, loc, rows: int, replays: int, store: bool) -> None:
        lc = self._line(_line_of(loc))
        if store:
            lc.shared_store_insts += rows
        else:
            lc.shared_load_insts += rows
        lc.shared_bank_replays += replays

    def local_access_rows(self, loc, rows: int, txns_rows: np.ndarray) -> None:
        lc = self._line(_line_of(loc))
        lc.local_insts += rows
        lc.local_transactions += int(txns_rows.sum())
        self.blk_txns += txns_rows

    def const_access_rows(self, loc, rows: int, serialized: int) -> None:
        lc = self._line(_line_of(loc))
        lc.const_insts += rows
        lc.const_serialized += serialized

    def shfl_rows(self, loc, rows: int) -> None:
        self._line(_line_of(loc)).shfl_insts += rows

    def atomic_rows(self, loc, rows: int) -> None:
        self._line(_line_of(loc)).atomic_insts += rows

    def sync_rows(self, line: int, rows: int) -> None:
        self._line(line).syncthreads += rows

    def finish(self, target: KernelProfile) -> None:
        """Reduce into ``target`` exactly as per-block execution would."""
        target.merge(KernelProfile(kernel=self.kernel, lines=self.lines))
        issues = self.blk_issues
        txns = self.blk_txns
        if self.rows_per_block > 1:
            shape = (len(self.block_ids), self.rows_per_block)
            issues = issues.reshape(shape).sum(axis=1)
            txns = txns.reshape(shape).sum(axis=1)
        for i, bid in enumerate(self.block_ids):
            target.begin_block(bid, self.num_warps, self.threads)
            bc = target.blocks[bid]
            bc.inst_issues += int(issues[i])
            bc.transactions += int(txns[i])
        target._current = None


# ---------------------------------------------------------------------------
# Batched execution context
# ---------------------------------------------------------------------------


class _MbLoopFrame:
    """(blocks, lanes) liveness bookkeeping for one loop nest level."""

    __slots__ = ("broken", "cont", "exited")

    def __init__(self, shape: tuple[int, int]):
        self.broken = np.zeros(shape, dtype=bool)
        self.cont = np.zeros(shape, dtype=bool)
        self.exited = np.zeros(shape, dtype=bool)


class MegaContext:
    """Per-mega-warp execution state: ``WarpContext`` with a block axis.

    Carries only what the batched closures touch — trace/injector/sanitizer
    launches are never eligible for this engine.  ``rows``/``rows_any``
    cache the row reduction by mask identity: several hooks on one statement
    always receive the same mask object.
    """

    __slots__ = (
        "env",
        "init_mask",
        "entry_mask",
        "entry_full",
        "nblocks",
        "inactive",
        "has_inactive",
        "returned",
        "loop_stack",
        "stats",
        "synccheck",
        "profile",
        "atomics_ok",
        "current_loc",
        "current_mask",
        "warp_idx",
        "_rows_key",
        "_rows_any",
        "_rows_val",
    )

    def __init__(
        self,
        env: dict,
        init_mask: np.ndarray,
        stats,
        nblocks: int,
        warp_idx: int = 0,
        synccheck: bool = False,
        profile: Optional[MegaProfile] = None,
        atomics_ok: bool = False,
    ):
        self.env = env
        self.init_mask = init_mask
        self.entry_mask = init_mask
        self.entry_full = bool(init_mask.all())
        self.nblocks = nblocks
        self.inactive = np.zeros(init_mask.shape, dtype=bool)
        self.has_inactive = False
        self.returned = np.zeros(init_mask.shape, dtype=bool)
        self.loop_stack: List[_MbLoopFrame] = []
        self.stats = stats
        self.synccheck = synccheck
        self.profile = profile
        # Only the flattened (megawarp) run order equals sequential atomic
        # order; the per-warp-slot schedule issues warp-major across blocks.
        self.atomics_ok = atomics_ok
        self.current_loc = None
        self.current_mask = init_mask
        self.warp_idx = warp_idx
        self._rows_key = None
        self._rows_any: Optional[np.ndarray] = None
        self._rows_val = 0

    def rows_any(self, mask: np.ndarray) -> np.ndarray:
        """(blocks,) bool: which rows have at least one active lane."""
        if mask is not self._rows_key:
            row_any = mask.any(axis=1)
            self._rows_key = mask
            self._rows_any = row_any
            self._rows_val = int(row_any.sum())
        return self._rows_any

    def rows(self, mask: np.ndarray) -> int:
        """How many blocks have at least one active lane — exactly the
        number of blocks the per-block engine would run this statement for
        (it never executes a statement under an empty mask)."""
        if mask is not self._rows_key:
            self.rows_any(mask)
        return self._rows_val


# ---------------------------------------------------------------------------
# Batched memory access (mirrors compile._fast_load_object/_fast_store_object
# minus the injector/trace/sanitizer hooks — those launches are ineligible)
# ---------------------------------------------------------------------------


def _mb_load_object(ctx: MegaContext, root, indices: list, mask: np.ndarray):
    stats = ctx.stats
    if isinstance(root, PointerValue):
        if len(indices) != 1:
            raise MemoryFault("global pointers are 1-D; use manual 2-D math")
        buf = root.buffer
        offsets = root.offsets + indices[0]
        addrs = buf.base_addr + offsets.astype(np.int64, copy=False) * buf.itemsize
        rows = ctx.rows(mask)
        active_rows = mask.sum(axis=1)
        txns_rows, unco_rows = _batch_global_stats(
            addrs, mask, buf.itemsize, active_rows
        )
        stats.global_load_insts += rows
        stats.global_transactions += int(txns_rows.sum())
        uncoalesced = int(np.count_nonzero(unco_rows))
        stats.uncoalesced_accesses += uncoalesced
        if ctx.profile is not None:
            ctx.profile.global_access_rows(
                ctx.current_loc, rows, txns_rows, uncoalesced, False
            )
        return _mb_global_load(buf, offsets, mask)
    if isinstance(root, BatchedSharedArray):
        flat = _fast_flat_index(root, indices)
        rows = ctx.rows(mask)
        stats.shared_load_insts += rows
        replays_rows = _batch_bank_replays(
            root.base_offset + flat * root.itemsize, mask
        )
        replays = int(replays_rows.sum())
        stats.shared_bank_replays += replays
        if ctx.profile is not None:
            ctx.profile.shared_access_rows(ctx.current_loc, rows, replays, False)
        return root.load(flat, mask)
    if isinstance(root, BatchedLocalArray):
        if len(indices) != 1:
            raise MemoryFault("local arrays are 1-D in this subset")
        idx = indices[0]
        if root.in_registers:
            pass  # register operand: free (the template unrolls the index)
        else:
            rows = ctx.rows(mask)
            stats.local_load_insts += rows
            ltx_rows = _batch_txns(_mb_local_byte_addrs(root, idx), mask)
            stats.local_transactions += int(ltx_rows.sum())
            stats.local_bytes += int(mask.sum()) * root.itemsize
            if ctx.profile is not None:
                ctx.profile.local_access_rows(ctx.current_loc, rows, ltx_rows)
        return root.load(idx, mask)
    if isinstance(root, ConstArray):
        if len(indices) != 1:
            raise MemoryFault("constant arrays are 1-D")
        idx = indices[0]
        rows = ctx.rows(mask)
        stats.const_load_insts += rows
        serialized = int(
            np.count_nonzero(_batch_const_serialized(root.byte_addrs(idx), mask))
        )
        stats.const_serialized += serialized
        if ctx.profile is not None:
            ctx.profile.const_access_rows(ctx.current_loc, rows, serialized)
        return _mb_tex_load(root, idx, mask)
    raise MemoryFault(f"cannot index into {type(root).__name__}")


def _mb_store_object(
    ctx: MegaContext, root, indices: list, mask: np.ndarray, values
) -> None:
    stats = ctx.stats
    values = np.asarray(values)
    if isinstance(root, PointerValue):
        if len(indices) != 1:
            raise MemoryFault("global pointers are 1-D; use manual 2-D math")
        buf = root.buffer
        offsets = root.offsets + indices[0]
        addrs = buf.base_addr + offsets.astype(np.int64, copy=False) * buf.itemsize
        rows = ctx.rows(mask)
        active_rows = mask.sum(axis=1)
        txns_rows, unco_rows = _batch_global_stats(
            addrs, mask, buf.itemsize, active_rows
        )
        stats.global_store_insts += rows
        stats.global_transactions += int(txns_rows.sum())
        uncoalesced = int(np.count_nonzero(unco_rows))
        stats.uncoalesced_accesses += uncoalesced
        if ctx.profile is not None:
            ctx.profile.global_access_rows(
                ctx.current_loc, rows, txns_rows, uncoalesced, True
            )
        _mb_global_store(buf, offsets, mask, values)
        return
    if isinstance(root, BatchedSharedArray):
        flat = _fast_flat_index(root, indices)
        rows = ctx.rows(mask)
        stats.shared_store_insts += rows
        replays_rows = _batch_bank_replays(
            root.base_offset + flat * root.itemsize, mask
        )
        replays = int(replays_rows.sum())
        stats.shared_bank_replays += replays
        if ctx.profile is not None:
            ctx.profile.shared_access_rows(ctx.current_loc, rows, replays, True)
        root.store(flat, mask, values)
        return
    if isinstance(root, BatchedLocalArray):
        if len(indices) != 1:
            raise MemoryFault("local arrays are 1-D in this subset")
        idx = indices[0]
        if root.in_registers:
            pass  # register operand: free (the template unrolls the index)
        else:
            rows = ctx.rows(mask)
            stats.local_store_insts += rows
            ltx_rows = _batch_txns(_mb_local_byte_addrs(root, idx), mask)
            stats.local_transactions += int(ltx_rows.sum())
            stats.local_bytes += int(mask.sum()) * root.itemsize
            if ctx.profile is not None:
                ctx.profile.local_access_rows(ctx.current_loc, rows, ltx_rows)
        root.store(idx, mask, values)
        return
    if isinstance(root, ConstArray):
        raise MemoryFault(f"constant array {root.name!r} is read-only")
    raise MemoryFault(f"cannot store into {type(root).__name__}")


# ---------------------------------------------------------------------------
# Expression lowering (mirrors compile.py; stat bumps scale by active rows)
# ---------------------------------------------------------------------------


def _mb_binary(expr: Binary) -> ExprFn:
    lhs_fn = mb_expr(expr.lhs)
    rhs_fn = mb_expr(expr.rhs)
    op = expr.op
    impl = FAST_BINARY_IMPLS.get(op)
    if impl is None:
        def unknown(ctx: MegaContext, mask: np.ndarray):
            lhs_fn(ctx, mask)
            rhs_fn(ctx, mask)
            ctx.stats.alu_insts += DEFAULT_BINOP_WEIGHT * ctx.rows(mask)
            raise KeyError(op)

        return unknown
    weight = BINOP_WEIGHTS.get(op, DEFAULT_BINOP_WEIGHT)
    const_name: Optional[str] = None
    if op in ("/", "%"):
        if isinstance(expr.rhs, IntLit):
            weight = 1.0
        elif isinstance(expr.rhs, Name):
            const_name = expr.rhs.id

    if const_name is not None:
        heavy = weight

        def fn_dyn(ctx: MegaContext, mask: np.ndarray):
            lhs = lhs_fn(ctx, mask)
            rhs = rhs_fn(ctx, mask)
            if isinstance(ctx.env.get(const_name), (int, np.integer)):
                ctx.stats.alu_insts += 1.0 * ctx.rows(mask)
            else:
                ctx.stats.alu_insts += heavy * ctx.rows(mask)
            if lhs.__class__ is PointerValue or rhs.__class__ is PointerValue:
                return _pointer_arith(op, lhs, rhs)
            return impl(lhs, rhs)

        return fn_dyn

    def fn(ctx: MegaContext, mask: np.ndarray):
        lhs = lhs_fn(ctx, mask)
        rhs = rhs_fn(ctx, mask)
        ctx.stats.alu_insts += weight * ctx.rows(mask)
        if lhs.__class__ is PointerValue or rhs.__class__ is PointerValue:
            return _pointer_arith(op, lhs, rhs)
        return impl(lhs, rhs)

    return fn


def _mb_unary(expr: Unary) -> ExprFn:
    operand_fn = mb_expr(expr.operand)
    op = expr.op
    if op == "-":
        def neg(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)
            return -value

        return neg
    if op == "+":
        def pos(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)
            return value

        return pos
    if op == "!":
        def lnot(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)
            return ~value.astype(bool, copy=False)

        return lnot
    if op == "~":
        def bnot(ctx, mask):
            value = operand_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)
            return (~value.astype(np.int64)).astype(np.int32)

        return bnot

    def unknown(ctx, mask):
        operand_fn(ctx, mask)
        ctx.stats.alu_insts += ctx.rows(mask)
        raise SimError(f"unknown unary op {op}")

    return unknown


def _mb_index_chain(expr: Index):
    root_expr, index_exprs = _resolve_index_chain(expr)
    root_fn = mb_expr(root_expr)
    idx_fns = tuple(mb_expr(ie) for ie in index_exprs)
    return root_fn, idx_fns


def _mb_load(expr: Index) -> ExprFn:
    loc = _stmt_loc(expr)
    root_fn, idx_fns = _mb_index_chain(expr)

    def fn(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        root = root_fn(ctx, mask)
        indices = [f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns]
        return _mb_load_object(ctx, root, indices, mask)

    return fn


def _mb_call(expr: Call) -> ExprFn:
    func = expr.func
    loc = _stmt_loc(expr)
    if func == "__syncthreads":
        return _raising(
            SimError, "__syncthreads() must be a standalone statement", loc
        )
    if func in ("__shfl", "__shfl_down", "__shfl_up"):
        if len(expr.args) != 3:
            return _raising(
                IntrinsicError, f"{func} expects (var, lane, width)", loc
            )
        var_fn = mb_expr(expr.args[0])
        lane_fn = mb_expr(expr.args[1])
        width_fn = mb_expr(expr.args[2])
        if func == "__shfl":
            def do_shfl(ctx: MegaContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                var = var_fn(ctx, mask)
                lane = lane_fn(ctx, mask)
                width = _uniform_int(width_fn(ctx, mask))
                ctx.stats.shfl_insts += ctx.rows(mask)
                if ctx.profile is not None:
                    ctx.profile.shfl_rows(ctx.current_loc, ctx.rows(mask))
                return _mb_shfl(var, lane, width)

            return do_shfl
        down = func == "__shfl_down"

        def do_shift(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            var = var_fn(ctx, mask)
            lane = lane_fn(ctx, mask)
            width = _uniform_int(width_fn(ctx, mask))
            ctx.stats.shfl_insts += ctx.rows(mask)
            if ctx.profile is not None:
                ctx.profile.shfl_rows(ctx.current_loc, ctx.rows(mask))
            return _mb_shfl_shift(var, _uniform_int(lane), width, down)

        return do_shift
    if func == "atomicAdd":
        if len(expr.args) != 2 or not isinstance(expr.args[0], Index):
            return _raising(
                IntrinsicError, "atomicAdd expects (array[index], value)", loc
            )
        root_fn, idx_fns = _mb_index_chain(expr.args[0])
        delta_fn = mb_expr(expr.args[1])

        def do_atomic(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            if not ctx.atomics_ok:
                # Per-warp-slot scheduling issues warp 0 of every block
                # before warp 1 of any block — not the sequential atomic
                # order.  Abort to the exact per-block fallback.
                raise SimError(
                    "megablock: atomics need the flattened (megawarp) order"
                )
            root = root_fn(ctx, mask)
            indices = [
                f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns
            ]
            delta = delta_fn(ctx, mask)
            rows = ctx.rows(mask)
            ctx.stats.atomic_insts += rows
            if ctx.profile is not None:
                ctx.profile.atomic_rows(ctx.current_loc, rows)
            return _mb_atomic_add(ctx, root, indices, mask, delta)

        return do_atomic
    if func == "tex1Dfetch":
        if len(expr.args) != 2 or not isinstance(expr.args[0], Name):
            return _raising(
                IntrinsicError, "tex1Dfetch expects (texture_name, index)", loc
            )
        tex_name = expr.args[0].id
        idx_fn = mb_expr(expr.args[1])

        def do_tex(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            tex = ctx.env.get(tex_name)
            idx = idx_fn(ctx, mask).astype(np.int64, copy=False)
            if isinstance(tex, (ConstArray, GlobalBuffer)):
                # Texture-cache amortization: see interp._eval_call.
                rows = ctx.rows(mask)
                ctx.stats.global_load_insts += rows
                active_rows = mask.sum(axis=1)
                txns_rows = np.where(
                    active_rows > 0,
                    np.maximum((active_rows * tex.itemsize + 127) // 128, 1),
                    0,
                )
                ctx.stats.global_transactions += int(txns_rows.sum())
                if ctx.profile is not None:
                    ctx.profile.global_access_rows(
                        ctx.current_loc, rows, txns_rows, 0, False
                    )
                return _mb_tex_load(tex, idx, mask)
            raise IntrinsicError(f"texture {tex_name!r} not bound")

        return do_tex
    intrinsic = MATH_INTRINSICS.get(func)
    if intrinsic is not None:
        if len(expr.args) != intrinsic.arity:
            return _raising(
                IntrinsicError,
                f"{func} expects {intrinsic.arity} args, got {len(expr.args)}",
                loc,
            )
        arg_fns = tuple(mb_expr(a) for a in expr.args)
        impl = intrinsic.fn
        weight = intrinsic.weight

        def do_intrinsic(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            args = [f(ctx, mask) for f in arg_fns]
            ctx.stats.alu_insts += weight * ctx.rows(mask)
            return impl(*args)

        return do_intrinsic
    return _raising(IntrinsicError, f"unknown device function {func!r}", loc)


def mb_expr(expr: Expr) -> ExprFn:
    """Lower one expression to a batched closure ``fn(ctx, mask)``.

    Literals and name lookups reuse the per-block lowerers: their
    ``(WARP_SIZE,)`` results broadcast against ``(blocks, WARP_SIZE)``
    operands, which is exactly the block-invariant semantics.
    """
    if isinstance(expr, IntLit):
        value = expr.value & 0xFFFFFFFF
        if value > 0x7FFFFFFF:
            value -= 0x100000000  # wrap to int32 like C
        return _compile_literal(np.full(WARP_SIZE, value, dtype=np.int32))
    if isinstance(expr, FloatLit):
        return _compile_literal(np.full(WARP_SIZE, expr.value, dtype=np.float32))
    if isinstance(expr, BoolLit):
        return _compile_literal(np.full(WARP_SIZE, expr.value, dtype=np.bool_))
    if isinstance(expr, Name):
        return _compile_name(expr.id)
    if isinstance(expr, Member):
        if isinstance(expr.base, Name) and expr.base.id in _MB_DIM_NAMES:
            key = f"{expr.base.id}.{expr.name}"

            def builtin(ctx: MegaContext, mask: np.ndarray):
                try:
                    return ctx.env[key]
                except KeyError as exc:
                    raise SimError(f"unknown builtin {key}") from exc

            return builtin
        return _raising(SimError, f"unsupported member access .{expr.name}")
    if isinstance(expr, Unary):
        return _mb_unary(expr)
    if isinstance(expr, Binary):
        return _mb_binary(expr)
    if isinstance(expr, Ternary):
        cond_fn = mb_expr(expr.cond)
        then_fn = mb_expr(expr.then)
        els_fn = mb_expr(expr.els)

        def ternary(ctx: MegaContext, mask: np.ndarray):
            cond = cond_fn(ctx, mask).astype(bool, copy=False)
            then = then_fn(ctx, mask)
            els = els_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)  # select
            if then.dtype.kind == "f" or els.dtype.kind == "f":
                then = then.astype(np.float32, copy=False)
                els = els.astype(np.float32, copy=False)
            return np.where(cond, then, els)

        return ternary
    if isinstance(expr, Cast):
        inner_fn = mb_expr(expr.expr)
        type_name = expr.type.name
        try:
            cast_dtype = dtype_for(type_name)
        except MemoryFault as exc:
            cast_dtype = None
            cast_error = str(exc)

        def cast(ctx: MegaContext, mask: np.ndarray):
            value = inner_fn(ctx, mask)
            ctx.stats.alu_insts += ctx.rows(mask)
            if value.__class__ is PointerValue:
                return value
            if cast_dtype is None:
                raise MemoryFault(cast_error)
            return value.astype(cast_dtype, copy=False)

        return cast
    if isinstance(expr, Index):
        return _mb_load(expr)
    if isinstance(expr, Call):
        return _mb_call(expr)
    return _raising(SimError, f"cannot evaluate expression {expr!r}")


_MB_DIM_NAMES = ("threadIdx", "blockIdx", "blockDim", "gridDim")


# ---------------------------------------------------------------------------
# Statement lowering
# ---------------------------------------------------------------------------


def _mb_decl(stmt: VarDecl) -> StmtFn:
    type_ = stmt.type
    name = stmt.name
    loc = _stmt_loc(stmt)
    if isinstance(type_, ArrayType):
        if type_.space in ("shared", "constant"):
            missing = (
                f"shared array {name!r} was not pre-allocated"
                if type_.space == "shared"
                else f"constant array {name!r} was not bound"
            )

            def check(ctx: MegaContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                if name not in ctx.env:
                    raise SimError(missing)

            return check
        numel = type_.numel
        elem = type_.elem.name
        in_registers = type_.space == "reg"

        def local_decl(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            existing = ctx.env.get(name)
            if isinstance(existing, BatchedLocalArray) and existing.numel == numel:
                existing.data[...] = 0
            else:
                base = ctx.env.get("__local_base__", 1 << 32)
                arr = BatchedLocalArray(
                    name,
                    numel,
                    elem,
                    nblocks=ctx.nblocks,
                    base_addr=base,
                    in_registers=in_registers,
                )
                ctx.env["__local_base__"] = base + arr.bytes_per_thread * WARP_SIZE
                ctx.env[name] = arr

        return local_decl
    if stmt.init is None:
        if isinstance(type_, PointerType):
            message = f"pointer {name!r} declared without initializer"

            def bad_ptr(ctx: MegaContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                raise SimError(message)

            return bad_ptr
        dtype = (
            np.float32
            if isinstance(type_, ScalarType) and type_.name == "float"
            else np.int32
        )
        zeros = np.zeros(WARP_SIZE, dtype=dtype)
        zeros.flags.writeable = False  # shared: assignments replace, not mutate

        def zero_decl(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            ctx.env[name] = zeros

        return zero_decl
    init_fn = mb_expr(stmt.init)
    if isinstance(type_, PointerType):
        def ptr_decl(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = init_fn(ctx, mask)
            if not isinstance(value, PointerValue):
                raise SimError(f"pointer {name!r} initialized with non-pointer")
            ctx.env[name] = value

        return ptr_decl
    type_name = type_.name
    try:
        decl_dtype = dtype_for(type_name)
    except MemoryFault as exc:
        return _raising(MemoryFault, str(exc), loc)

    def scalar_decl(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        value = init_fn(ctx, mask)
        if isinstance(value, PointerValue):
            raise SimError(f"scalar {name!r} initialized with pointer")
        ctx.env[name] = value.astype(decl_dtype, copy=False)

    return scalar_decl


def _mb_assign(stmt: Assign) -> StmtFn:
    loc = _stmt_loc(stmt)
    if stmt.op != "=":
        value_fn = mb_expr(Binary(stmt.op[:-1], stmt.target, stmt.value))
    else:
        value_fn = mb_expr(stmt.value)
    target = stmt.target
    if isinstance(target, Name):
        name = target.id

        def assign_name(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = value_fn(ctx, mask)
            old = ctx.env.get(name)
            if value.__class__ is PointerValue:
                ctx.env[name] = value
                return
            if old is None:
                raise SimError(f"assignment to undeclared variable {name!r}")
            if isinstance(old, (int, float)):
                old = _broadcast(
                    old, np.int32 if isinstance(old, int) else np.float32
                )
            if old.__class__ is PointerValue:
                ctx.env[name] = value
                return
            if (
                mask is ctx.entry_mask
                and ctx.entry_full
                and not ctx.has_inactive
            ):
                ctx.env[name] = value.astype(old.dtype, copy=False)
            else:
                ctx.env[name] = np.where(
                    mask, value.astype(old.dtype, copy=False), old
                )

        return assign_name
    if isinstance(target, Index):
        root_fn, idx_fns = _mb_index_chain(target)

        def assign_index(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            value = value_fn(ctx, mask)
            root = root_fn(ctx, mask)
            indices = [
                f(ctx, mask).astype(np.int64, copy=False) for f in idx_fns
            ]
            _mb_store_object(ctx, root, indices, mask, value)

        return assign_index
    message = f"invalid assignment target {type(target).__name__}"

    def bad_target(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        value_fn(ctx, mask)
        raise SimError(message)

    return bad_target


def _mb_sync(stmt: ExprStmt) -> StmtFn:
    loc = _stmt_loc(stmt)
    line = stmt.loc.line if stmt.loc is not None else 0

    def sync(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        ctx.stats.syncthreads += ctx.rows(mask)
        if ctx.profile is not None:
            ctx.profile.sync_rows(line, ctx.rows(mask))
        if ctx.synccheck:
            # See interp.exec_stmt for the synccheck/hardware semantics note.
            expected = ctx.init_mask & ~ctx.returned
            missing = expected & ~mask
            if missing.any():
                raise SyncError(
                    "__syncthreads reached by only part of the thread block "
                    "(megablock batch)",
                )
        yield ("sync", line)

    return sync


def _mb_if(stmt: If) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    line = loc.line if loc is not None else None
    cond_fn = mb_expr(stmt.cond)
    then_fn, then_gen = mb_block(stmt.then)
    has_else = stmt.els is not None and bool(stmt.els.stmts)
    els_fn, els_gen = mb_block(stmt.els) if has_else else (None, False)
    is_gen = then_gen or els_gen

    if not is_gen:
        def plain_if(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            cond = cond_fn(ctx, mask).astype(bool, copy=False)
            ctx.stats.control_insts += ctx.rows(mask)
            m_then = mask & cond
            then_any = _mask_any(m_then)
            if has_else:
                m_else = _and_not(mask, cond)
                else_any = _mask_any(m_else)
                if then_any and else_any:
                    both = m_then.any(axis=1) & m_else.any(axis=1)
                    ndiv = int(np.count_nonzero(both))
                    if ndiv:
                        ctx.stats.divergent_branches += ndiv
                        if ctx.profile is not None and line is not None:
                            ctx.profile.divergent_n(line, ndiv)
                if then_any:
                    then_fn(ctx, m_then)
                if else_any:
                    els_fn(ctx, m_else)
            elif then_any:
                then_fn(ctx, m_then)

        return plain_if, False

    def gen_if(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        cond = cond_fn(ctx, mask).astype(bool, copy=False)
        ctx.stats.control_insts += ctx.rows(mask)
        m_then = mask & cond
        then_any = _mask_any(m_then)
        if has_else:
            m_else = _and_not(mask, cond)
            else_any = _mask_any(m_else)
            if then_any and else_any:
                both = m_then.any(axis=1) & m_else.any(axis=1)
                ndiv = int(np.count_nonzero(both))
                if ndiv:
                    ctx.stats.divergent_branches += ndiv
                    if ctx.profile is not None and line is not None:
                        ctx.profile.divergent_n(line, ndiv)
            if then_any:
                if then_gen:
                    yield from then_fn(ctx, m_then)
                else:
                    then_fn(ctx, m_then)
            if else_any:
                if els_gen:
                    yield from els_fn(ctx, m_else)
                else:
                    els_fn(ctx, m_else)
        elif then_any:
            if then_gen:
                yield from then_fn(ctx, m_then)
            else:
                then_fn(ctx, m_then)

    return gen_if, True


def _mb_has_flow(block: Block) -> bool:
    from .compile import _has_flow

    return _has_flow(block)


def _mb_for(stmt: For) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    init_fn, init_gen = (
        mb_stmt(stmt.init) if stmt.init is not None else (None, False)
    )
    cond_fn = mb_expr(stmt.cond) if stmt.cond is not None else None
    update_fn, update_gen = (
        mb_stmt(stmt.update) if stmt.update is not None else (None, False)
    )
    body_fn, body_gen = mb_block(stmt.body)
    flow = _mb_has_flow(stmt.body)
    is_gen = init_gen or update_gen or body_gen

    if not is_gen:
        def plain_for(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if init_fn is not None:
                init_fn(ctx, mask)
            frame = _MbLoopFrame(ctx.init_mask.shape)
            ctx.loop_stack.append(frame)
            try:
                while True:
                    if ctx.has_inactive:
                        m = _and_not(mask, ctx.inactive)
                        if not _mask_any(m):
                            break
                    else:
                        m = mask
                    if cond_fn is not None:
                        cond = cond_fn(ctx, m).astype(bool, copy=False)
                        ctx.stats.control_insts += ctx.rows(m)
                        leaving = _and_not(m, cond)
                        if _mask_any(leaving):
                            frame.exited |= leaving
                            ctx.inactive |= leaving
                            ctx.has_inactive = True
                            m = m & cond
                            if not _mask_any(m):
                                break
                    body_fn(ctx, m)
                    if flow:
                        ctx.inactive &= ~frame.cont
                        frame.cont[:] = False
                        ctx.has_inactive = _mask_any(ctx.inactive)
                        if update_fn is not None:
                            mu = _and_not(mask, ctx.inactive)
                            if _mask_any(mu):
                                update_fn(ctx, mu)
                    elif update_fn is not None:
                        update_fn(ctx, m)
            finally:
                ctx.loop_stack.pop()
                ctx.inactive &= ~(frame.broken | frame.exited)
                ctx.has_inactive = _mask_any(ctx.inactive)

        return plain_for, False

    def gen_for(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        if init_fn is not None:
            if init_gen:
                yield from init_fn(ctx, mask)
            else:
                init_fn(ctx, mask)
        frame = _MbLoopFrame(ctx.init_mask.shape)
        ctx.loop_stack.append(frame)
        try:
            while True:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        break
                else:
                    m = mask
                if cond_fn is not None:
                    cond = cond_fn(ctx, m).astype(bool, copy=False)
                    ctx.stats.control_insts += ctx.rows(m)
                    leaving = _and_not(m, cond)
                    if _mask_any(leaving):
                        frame.exited |= leaving
                        ctx.inactive |= leaving
                        ctx.has_inactive = True
                        m = m & cond
                        if not _mask_any(m):
                            break
                if body_gen:
                    yield from body_fn(ctx, m)
                else:
                    body_fn(ctx, m)
                if flow:
                    ctx.inactive &= ~frame.cont
                    frame.cont[:] = False
                    ctx.has_inactive = _mask_any(ctx.inactive)
                    if update_fn is not None:
                        mu = _and_not(mask, ctx.inactive)
                        if _mask_any(mu):
                            if update_gen:
                                yield from update_fn(ctx, mu)
                            else:
                                update_fn(ctx, mu)
                elif update_fn is not None:
                    if update_gen:
                        yield from update_fn(ctx, m)
                    else:
                        update_fn(ctx, m)
        finally:
            ctx.loop_stack.pop()
            ctx.inactive &= ~(frame.broken | frame.exited)
            ctx.has_inactive = _mask_any(ctx.inactive)

    return gen_for, True


def _mb_while(stmt: While) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    cond_fn = mb_expr(stmt.cond)
    body_fn, body_gen = mb_block(stmt.body)
    flow = _mb_has_flow(stmt.body)

    if not body_gen:
        def plain_while(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            frame = _MbLoopFrame(ctx.init_mask.shape)
            ctx.loop_stack.append(frame)
            try:
                while True:
                    if ctx.has_inactive:
                        m = _and_not(mask, ctx.inactive)
                        if not _mask_any(m):
                            break
                    else:
                        m = mask
                    cond = cond_fn(ctx, m).astype(bool, copy=False)
                    ctx.stats.control_insts += ctx.rows(m)
                    leaving = _and_not(m, cond)
                    if _mask_any(leaving):
                        frame.exited |= leaving
                        ctx.inactive |= leaving
                        ctx.has_inactive = True
                        m = m & cond
                        if not _mask_any(m):
                            break
                    body_fn(ctx, m)
                    if flow:
                        ctx.inactive &= ~frame.cont
                        frame.cont[:] = False
                        ctx.has_inactive = _mask_any(ctx.inactive)
            finally:
                ctx.loop_stack.pop()
                ctx.inactive &= ~(frame.broken | frame.exited)
                ctx.has_inactive = _mask_any(ctx.inactive)

        return plain_while, False

    def gen_while(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        frame = _MbLoopFrame(ctx.init_mask.shape)
        ctx.loop_stack.append(frame)
        try:
            while True:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        break
                else:
                    m = mask
                cond = cond_fn(ctx, m).astype(bool, copy=False)
                ctx.stats.control_insts += ctx.rows(m)
                leaving = _and_not(m, cond)
                if _mask_any(leaving):
                    frame.exited |= leaving
                    ctx.inactive |= leaving
                    ctx.has_inactive = True
                    m = m & cond
                    if not _mask_any(m):
                        break
                yield from body_fn(ctx, m)
                if flow:
                    ctx.inactive &= ~frame.cont
                    frame.cont[:] = False
                    ctx.has_inactive = _mask_any(ctx.inactive)
        finally:
            ctx.loop_stack.pop()
            ctx.inactive &= ~(frame.broken | frame.exited)
            ctx.has_inactive = _mask_any(ctx.inactive)

    return gen_while, True


#: Same module-flag scheme as compile._PROFILE_LOWERING (lowering is
#: synchronous and single-threaded).
_MB_PROFILE_LOWERING = False


def _mb_wrap_profiled(fn: StmtFn, is_gen: bool, line: int) -> StmtFn:
    """Batched twin of compile._wrap_profiled: one hook per statement
    execution carrying the row count, total active lanes and the per-row
    activity vector (for BlockCost.inst_issues)."""
    if is_gen:

        def gen_hook(ctx: MegaContext, mask: np.ndarray):
            if ctx.profile is not None:
                ctx.profile.stmt_rows(
                    line, ctx.rows(mask), int(mask.sum()), ctx.rows_any(mask)
                )
            yield from fn(ctx, mask)

        return gen_hook

    def hook(ctx: MegaContext, mask: np.ndarray):
        if ctx.profile is not None:
            ctx.profile.stmt_rows(
                line, ctx.rows(mask), int(mask.sum()), ctx.rows_any(mask)
            )
        fn(ctx, mask)

    return hook


def mb_stmt(stmt: Stmt) -> tuple[StmtFn, bool]:
    fn, is_gen = _mb_stmt_dispatch(stmt)
    if _MB_PROFILE_LOWERING:
        loc = _stmt_loc(stmt)
        if loc is not None:
            return _mb_wrap_profiled(fn, is_gen, loc.line), is_gen
    return fn, is_gen


def _mb_stmt_dispatch(stmt: Stmt) -> tuple[StmtFn, bool]:
    loc = _stmt_loc(stmt)
    if isinstance(stmt, VarDecl):
        return _mb_decl(stmt), False
    if isinstance(stmt, Assign):
        return _mb_assign(stmt), False
    if isinstance(stmt, ExprStmt):
        if isinstance(stmt.expr, Call) and stmt.expr.func == "__syncthreads":
            return _mb_sync(stmt), True
        expr_fn = mb_expr(stmt.expr)

        def eval_stmt(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            expr_fn(ctx, mask)

        return eval_stmt, False
    if isinstance(stmt, Block):
        block_fn, block_gen = mb_block(stmt)
        if not block_gen:
            def plain_nested(ctx: MegaContext, mask: np.ndarray):
                if loc is not None:
                    ctx.current_loc = loc
                ctx.current_mask = mask
                block_fn(ctx, mask)

            return plain_nested, False

        def gen_nested(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            yield from block_fn(ctx, mask)

        return gen_nested, True
    if isinstance(stmt, If):
        return _mb_if(stmt)
    if isinstance(stmt, For):
        return _mb_for(stmt)
    if isinstance(stmt, While):
        return _mb_while(stmt)
    if isinstance(stmt, Return):
        value_fn = mb_expr(stmt.value) if stmt.value is not None else None

        def do_return(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if value_fn is not None:
                value_fn(ctx, mask)
            ctx.returned |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_return, False
    if isinstance(stmt, Break):
        def do_break(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if not ctx.loop_stack:
                raise SimError("break outside loop")
            ctx.loop_stack[-1].broken |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_break, False
    if isinstance(stmt, Continue):
        def do_continue(ctx: MegaContext, mask: np.ndarray):
            if loc is not None:
                ctx.current_loc = loc
            ctx.current_mask = mask
            if not ctx.loop_stack:
                raise SimError("continue outside loop")
            ctx.loop_stack[-1].cont |= mask
            ctx.inactive |= mask
            ctx.has_inactive = True

        return do_continue, False
    kind = type(stmt).__name__

    def unknown(ctx: MegaContext, mask: np.ndarray):
        if loc is not None:
            ctx.current_loc = loc
        ctx.current_mask = mask
        raise SimError(f"cannot execute statement {kind}")

    return unknown, False


def mb_block(block: Block) -> tuple[StmtFn, bool]:
    pairs = [mb_stmt(s) for s in block.stmts]
    if not any(gen for _, gen in pairs):
        fns = tuple(fn for fn, _ in pairs)
        if len(fns) == 1:
            single = fns[0]

            def run_single(ctx: MegaContext, mask: np.ndarray):
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        return
                    single(ctx, m)
                else:
                    single(ctx, mask)

            return run_single, False

        def run_plain(ctx: MegaContext, mask: np.ndarray):
            for fn in fns:
                if ctx.has_inactive:
                    m = _and_not(mask, ctx.inactive)
                    if not _mask_any(m):
                        return
                    fn(ctx, m)
                else:
                    fn(ctx, mask)

        return run_plain, False
    items = tuple(pairs)

    def run_gen(ctx: MegaContext, mask: np.ndarray):
        for fn, is_gen in items:
            if ctx.has_inactive:
                m = _and_not(mask, ctx.inactive)
                if not _mask_any(m):
                    return
            else:
                m = mask
            if is_gen:
                yield from fn(ctx, m)
            else:
                fn(ctx, m)

    return run_gen, True


# ---------------------------------------------------------------------------
# Compiled megablock kernels and the (shared) compile cache
# ---------------------------------------------------------------------------


@dataclass
class MegaKernel:
    """One kernel lowered to batched closures for
    :class:`MegablockExecutor`."""

    kernel: Kernel
    digest: Optional[str]
    body_fn: StmtFn
    body_is_gen: bool
    uses_atomics: bool
    flatten_safe: bool
    atomics_exact: bool
    profiled: bool = False

    @property
    def has_barriers(self) -> bool:
        return self.body_is_gen

    def warp_iterator(self, ctx: MegaContext, mask: np.ndarray) -> Iterator:
        if self.body_is_gen:
            return self.body_fn(ctx, mask)
        return _plain_iterator(self.body_fn, ctx, mask)


def _mb_lower(
    kernel: Kernel, digest: Optional[str], profile: bool = False
) -> MegaKernel:
    global _MB_PROFILE_LOWERING
    prev = _MB_PROFILE_LOWERING
    _MB_PROFILE_LOWERING = profile
    try:
        body_fn, body_is_gen = mb_block(kernel.body)
    finally:
        _MB_PROFILE_LOWERING = prev
    return MegaKernel(
        kernel=kernel,
        digest=digest,
        body_fn=body_fn,
        body_is_gen=body_is_gen,
        uses_atomics=kernel_uses_atomics(kernel),
        flatten_safe=kernel_flatten_safe(kernel),
        atomics_exact=kernel_atomic_order_free(kernel),
        profiled=profile,
    )


def megablock_flatten(
    program: MegaKernel, num_warps: int, has_shared: bool, synccheck: bool
) -> bool:
    """Can this launch fold the warp axis into the batch (megawarp)?

    One warp per block is trivially the flattened layout.  With several
    warps, flattening replaces the per-warp-slot round-robin with statement
    lockstep over ``(blocks × warps)`` rows, which is exact unless:

    * ``synccheck`` — the partial-barrier check compares arrival masks per
      warp slot and would lose its per-slot granularity;
    * a ``__syncthreads`` sits under an ``if`` (``flatten_safe`` is false) —
      pre-Volta master/slave kernels depend on the round-robin schedule;
    * shared memory is used without any barrier — cross-warp shared traffic
      with no sync would see lockstep instead of warp-sequential order
      (thread-private use would be fine, but the cheap syntactic test cannot
      tell them apart, and the per-warp path stays exact).

    Atomics additionally *require* the flattened order: the launch ladder
    reports ``"atomic-order"`` when a kernel uses atomics and this returns
    False.
    """
    if num_warps <= 1:
        return True
    if synccheck:
        return False
    if not program.flatten_safe:
        return False
    if has_shared and not program.has_barriers:
        return False
    return True


def compile_megablock(
    kernel: Kernel, cache: bool = True, profile: bool = False
) -> MegaKernel:
    """Lower ``kernel`` to batched closures; artifacts share the per-block
    LRU under ``#mb`` / ``#mb#prof`` key suffixes."""
    digest = kernel_digest(kernel) if cache else None
    if digest is None:
        return _mb_lower(kernel, None, profile)
    key = digest + ("#mb#prof" if profile else "#mb")
    cached = _cache_get(key)
    if cached is not None:
        return cached
    compiled = _mb_lower(kernel, digest, profile)
    _cache_put(key, compiled)
    return compiled


# ---------------------------------------------------------------------------
# The megablock executor
# ---------------------------------------------------------------------------


class MegablockExecutor:
    """Runs a batch of independent blocks as stacked mega-warps.

    Mirrors :class:`~repro.gpusim.interp.BlockExecutor`: one generator per
    warp slot (covering that slot in *every* block), round-robined on the
    ``("sync", line)`` yield protocol.  Shared/local memory materializes as
    batched slabs at the same sequential base offsets the per-block
    allocator assigns, and blockIdx builtins are ``(blocks, lanes)``
    broadcast views.
    """

    def __init__(
        self,
        kernel: Kernel,
        block_ids,
        block_dim: tuple[int, int, int],
        grid_dim: tuple[int, int, int],
        base_env: dict,
        stats,
        program: MegaKernel,
        synccheck: bool = False,
        scaffold: Optional[WarpScaffold] = None,
        profile: Optional[MegaProfile] = None,
    ):
        self.kernel = kernel
        self.block_ids = [int(b) for b in block_ids]
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.base_env = base_env
        self.stats = stats
        self.program = program
        self.synccheck = synccheck
        self.profile = profile
        if scaffold is None:
            scaffold = WarpScaffold(kernel, block_dim, grid_dim)
        else:
            assert scaffold.kernel is kernel and scaffold.block_dim == block_dim
        self.scaffold = scaffold
        nblocks = len(self.block_ids)
        self.nblocks = nblocks
        ids = np.asarray(self.block_ids, dtype=np.int64)
        gx, gy, _gz = grid_dim
        plane = gx * gy
        shape = (nblocks, WARP_SIZE)
        self._block_builtins = {
            "blockIdx.x": np.broadcast_to(
                (ids % gx).astype(np.int32)[:, None], shape
            ),
            "blockIdx.y": np.broadcast_to(
                ((ids % plane) // gx).astype(np.int32)[:, None], shape
            ),
            "blockIdx.z": np.broadcast_to(
                (ids // plane).astype(np.int32)[:, None], shape
            ),
        }
        self._pointer_keys = [
            key
            for key, value in base_env.items()
            if isinstance(value, (GlobalBuffer, PointerValue))
        ]
        self.shared: Dict[str, BatchedSharedArray] = {}
        offset = 0
        for decl in scaffold.shared_decls:
            assert isinstance(decl.type, ArrayType)
            arr = BatchedSharedArray(
                decl.name,
                decl.type.dims,
                decl.type.elem.name,
                nblocks=nblocks,
                base_offset=offset,
            )
            offset += arr.nbytes
            self.shared[decl.name] = arr
        self.flatten = megablock_flatten(
            program, scaffold.num_warps, bool(self.shared), synccheck
        )
        if self.flatten and scaffold.num_warps > 1:
            # Batch rows become (block, warp) pairs, block-major; all warps
            # of one block keep addressing that block's shared slab row.
            row_index = np.repeat(np.arange(nblocks), scaffold.num_warps)
            for arr in self.shared.values():
                arr.row_index = row_index

    @property
    def shared_bytes(self) -> int:
        """Per-block shared footprint (occupancy accounting is per block)."""
        return sum(arr.nbytes for arr in self.shared.values())

    def _warp_env(self, warp_idx: int) -> tuple[dict, np.ndarray]:
        warp_mask, builtins = self.scaffold.warp_builtins(warp_idx)
        env = dict(self.base_env)
        env.update(self.shared)
        env.update(self.kernel.const_env)
        env.update(builtins)
        env.update(self._block_builtins)
        for key in self._pointer_keys:
            value = env[key]
            if isinstance(value, GlobalBuffer):
                env[key] = PointerValue(value, np.zeros(WARP_SIZE, dtype=np.int64))
            elif isinstance(value, PointerValue):
                env[key] = PointerValue(value.buffer, value.offsets.copy())
        init_mask = np.broadcast_to(warp_mask, (self.nblocks, WARP_SIZE))
        return env, init_mask

    def _flat_env(self) -> tuple[dict, np.ndarray]:
        """Environment and init mask for the flattened (megawarp) run with
        several warps per block: batch row ``r`` is warp ``r % W`` of batch
        block ``r // W``.  Block-major row order is the sequential execution
        order, so row-major scatters and the batched atomic fold replay
        sequential last-writer/accumulation semantics."""
        num_warps = self.scaffold.num_warps
        nrows = self.nblocks * num_warps
        shape = (nrows, WARP_SIZE)
        env = dict(self.base_env)
        env.update(self.shared)
        env.update(self.kernel.const_env)
        masks = []
        per_warp: List[dict] = []
        for w in range(num_warps):
            warp_mask, builtins = self.scaffold.warp_builtins(w)
            masks.append(warp_mask)
            per_warp.append(builtins)
        for key in per_warp[0]:
            stacked = np.stack([b[key] for b in per_warp])
            if (stacked == stacked[0]).all():
                env[key] = stacked[0]  # warp-invariant (blockDim/gridDim)
            else:
                env[key] = np.tile(stacked, (self.nblocks, 1))
        init_mask = np.tile(np.stack(masks), (self.nblocks, 1))
        ids = np.repeat(
            np.asarray(self.block_ids, dtype=np.int64), num_warps
        )
        gx, gy, _gz = self.grid_dim
        plane = gx * gy
        env["blockIdx.x"] = np.broadcast_to(
            (ids % gx).astype(np.int32)[:, None], shape
        )
        env["blockIdx.y"] = np.broadcast_to(
            ((ids % plane) // gx).astype(np.int32)[:, None], shape
        )
        env["blockIdx.z"] = np.broadcast_to(
            (ids // plane).astype(np.int32)[:, None], shape
        )
        for key in self._pointer_keys:
            value = env[key]
            if isinstance(value, GlobalBuffer):
                env[key] = PointerValue(value, np.zeros(WARP_SIZE, dtype=np.int64))
            elif isinstance(value, PointerValue):
                env[key] = PointerValue(value.buffer, value.offsets.copy())
        return env, init_mask

    def run(self) -> None:
        # Same single errstate guard the per-block executor holds.
        with np.errstate(all="ignore"):
            if self.flatten:
                self._run_flat()
            else:
                self._run()

    def _run_flat(self) -> None:
        """Megawarp execution: one context, one generator, the whole grid.

        With one warp per block this is exactly the classic megablock run
        (which already had a single generator); with several it stacks
        ``(blocks × warps)`` rows so every statement closure fires once for
        the entire launch.  Barriers degenerate to trivially satisfied
        ordering points because all rows execute in statement lockstep.
        Atomics are only legal here (``atomics_ok``): batch rows ascend in
        sequential (block, warp) order, which the deterministic atomic fold
        relies on.
        """
        total = self.scaffold.total_threads
        num_warps = self.scaffold.num_warps
        nblocks = self.nblocks
        self.stats.blocks_executed += nblocks
        self.stats.warps_executed += nblocks * num_warps
        self.stats.threads_launched += nblocks * total
        if num_warps == 1:
            env, init_mask = self._warp_env(0)
            nrows = nblocks
        else:
            env, init_mask = self._flat_env()
            nrows = nblocks * num_warps
            if self.profile is not None:
                self.profile.set_rows_per_block(num_warps)
        ctx = MegaContext(
            env,
            init_mask,
            self.stats,
            nrows,
            warp_idx=0,
            synccheck=self.synccheck,
            profile=self.profile,
            # The launch ladder only admits atomic kernels whose batched
            # order is provably exact; honour the same analysis here so a
            # directly constructed executor aborts (SimError -> per-block
            # rerun) instead of silently reordering float accumulation.
            atomics_ok=self.program.atomics_exact,
        )
        for _event in self.program.warp_iterator(ctx, init_mask):
            pass

    def _run(self) -> None:
        total = self.scaffold.total_threads
        num_warps = self.scaffold.num_warps
        nblocks = self.nblocks
        self.stats.blocks_executed += nblocks
        self.stats.warps_executed += nblocks * num_warps
        self.stats.threads_launched += nblocks * total
        alive: List[tuple[MegaContext, Iterator]] = []
        for w in range(num_warps):
            env, init_mask = self._warp_env(w)
            ctx = MegaContext(
                env,
                init_mask,
                self.stats,
                nblocks,
                warp_idx=w,
                synccheck=self.synccheck,
                profile=self.profile,
            )
            gen = self.program.warp_iterator(ctx, init_mask)
            alive.append((ctx, gen))
        while alive:
            still_alive = []
            arrivals: List[int] = []
            for ctx, gen in alive:
                try:
                    event = next(gen)
                except StopIteration:
                    continue
                if not (isinstance(event, tuple) and event[0] == "sync"):
                    raise SyncError(
                        f"unexpected warp event {event!r}"
                    )  # pragma: no cover - defensive
                arrivals.append(event[1])
                still_alive.append((ctx, gen))
            if arrivals and self.synccheck:
                lines = sorted(set(arrivals))
                if len(lines) > 1:
                    raise SyncError(
                        "warps arrived at different __syncthreads barriers "
                        f"(source lines {lines})"
                    )
            alive = still_alive
