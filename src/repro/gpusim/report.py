"""Human-readable kernel profiles from simulated launches.

``profile_report`` renders everything the simulator knows about one launch
— launch shape, occupancy, instruction mix, memory traffic, and the timing
model's internals — the way a profiler (nvprof-style) would summarize a real
run.  Useful when deciding *why* a CUDA-NP variant won or lost.
"""

from __future__ import annotations

from .launch import LaunchResult


def _line(label: str, value, unit: str = "") -> str:
    return f"  {label:<34} {value}{(' ' + unit) if unit else ''}"


def profile_report(result: LaunchResult) -> str:
    """Format one launch's statistics as a multi-section text report."""
    stats = result.stats
    timing = result.timing
    occ = result.occupancy
    n_warp = max(stats.warps_executed, 1)

    out: list[str] = []
    out.append(f"=== kernel profile: {result.kernel_name} ===")
    out.append(_line("device", result.device.name))
    out.append(_line("grid x block", f"{result.grid} x {result.block}"))
    out.append(
        _line(
            "threads (blocks x per-block)",
            f"{result.total_blocks} x {result.threads_per_block} "
            f"= {result.total_blocks * result.threads_per_block}",
        )
    )
    if result.sampled_blocks is not None:
        out.append(
            _line("blocks executed (sampled)", result.sampled_blocks)
        )

    out.append("occupancy:")
    out.append(_line("registers / thread", f"{result.usage.regs_per_thread}"))
    out.append(
        _line("shared / block", result.usage.shared_bytes_per_block, "B")
    )
    out.append(
        _line("local / thread", result.usage.local_bytes_per_thread, "B")
    )
    out.append(
        _line(
            "resident blocks per SMX",
            f"{occ.blocks_per_smx} (limited by {occ.limiting_factor})",
        )
    )
    out.append(
        _line(
            "resident threads per SMX",
            f"{occ.threads_per_smx} "
            f"({occ.occupancy_fraction(result.device):.0%} occupancy)",
        )
    )

    out.append("instruction mix (per warp):")
    out.append(_line("arithmetic", f"{stats.alu_insts / n_warp:.1f}"))
    out.append(_line("control", f"{stats.control_insts / n_warp:.1f}"))
    out.append(_line("global memory", f"{stats.global_mem_insts / n_warp:.1f}"))
    out.append(_line("local memory", f"{stats.local_mem_insts / n_warp:.1f}"))
    out.append(_line("shared memory", f"{stats.shared_mem_insts / n_warp:.1f}"))
    out.append(_line("shuffles", f"{stats.shfl_insts / n_warp:.1f}"))
    out.append(_line("barriers", f"{stats.syncthreads / n_warp:.1f}"))
    out.append(_line("atomics", f"{stats.atomic_insts / n_warp:.1f}"))
    out.append(
        _line("divergent branches (total)", stats.divergent_branches)
    )

    out.append("memory system:")
    pw = stats.per_warp()
    out.append(
        _line(
            "global transactions / access",
            f"{pw.transactions_per_mem_inst:.2f}"
            + ("  (coalesced)" if pw.transactions_per_mem_inst <= 1.3 else ""),
        )
    )
    out.append(_line("uncoalesced accesses", stats.uncoalesced_accesses))
    out.append(_line("shared bank replays", stats.shared_bank_replays))
    out.append(_line("L1 hit rate (local)", f"{timing.l1_hit_rate:.0%}"))
    out.append(_line("DRAM traffic", f"{timing.dram_bytes / 1e6:.2f}", "MB"))

    out.append("timing model:")
    out.append(_line("bound", timing.bound))
    out.append(_line("active warps per SMX", timing.active_warps_per_smx))
    out.append(_line("MWP / CWP", f"{timing.mwp:.1f} / {timing.cwp:.1f}"))
    out.append(_line("waves (repetitions)", f"{timing.repetitions:.2f}"))
    out.append(
        _line("compute cycles / warp", f"{timing.comp_cycles_per_warp:.0f}")
    )
    out.append(
        _line("memory cycles / warp", f"{timing.mem_cycles_per_warp:.0f}")
    )
    out.append(_line("modeled time", f"{timing.milliseconds:.4f}", "ms"))
    out.append(
        _line("achieved bandwidth", f"{timing.achieved_bandwidth_gbs:.1f}", "GB/s")
    )
    return "\n".join(out)


def compare_report(baseline: LaunchResult, variant: LaunchResult) -> str:
    """Side-by-side deltas that explain a variant's win or loss."""
    rows = [
        ("modeled time (ms)",
         baseline.timing.milliseconds, variant.timing.milliseconds),
        ("active warps / SMX",
         baseline.timing.active_warps_per_smx, variant.timing.active_warps_per_smx),
        ("compute cycles / warp",
         baseline.timing.comp_cycles_per_warp, variant.timing.comp_cycles_per_warp),
        ("memory cycles / warp",
         baseline.timing.mem_cycles_per_warp, variant.timing.mem_cycles_per_warp),
        ("DRAM traffic (MB)",
         baseline.timing.dram_bytes / 1e6, variant.timing.dram_bytes / 1e6),
        ("L1 hit rate",
         baseline.timing.l1_hit_rate, variant.timing.l1_hit_rate),
        ("divergent branches",
         baseline.stats.divergent_branches, variant.stats.divergent_branches),
    ]
    out = [f"=== {baseline.kernel_name} vs {variant.kernel_name} ==="]
    out.append(f"  {'metric':<26} {'baseline':>12} {'variant':>12}")
    for label, a, b in rows:
        fa = f"{a:.3f}" if isinstance(a, float) else str(a)
        fb = f"{b:.3f}" if isinstance(b, float) else str(b)
        out.append(f"  {label:<26} {fa:>12} {fb:>12}")
    speedup = baseline.timing.seconds / max(variant.timing.seconds, 1e-30)
    out.append(f"  {'speedup':<26} {'':>12} {speedup:>11.2f}x")
    return "\n".join(out)
