"""Kernel launch API: the simulator's host-side runtime.

``launch`` plays the role of ``kernel<<<grid, block>>>(args)``: it allocates
global buffers for array arguments, runs every thread block through the SIMT
interpreter (optionally sampling blocks for very large grids), and combines
the collected statistics with the occupancy calculator and the Hong–Kim
timing model into a :class:`LaunchResult`.

Error model (CUDA-style).  A faulting launch behaves like a sticky per-launch
device error: with ``on_error="raise"`` (the default) the enriched
:class:`~repro.gpusim.errors.SimError` — carrying a located
:class:`~repro.gpusim.diagnostics.FaultContext` — propagates to the caller;
with ``on_error="status"`` the launch *returns* and the result's
:attr:`LaunchResult.error` holds a :class:`~repro.gpusim.diagnostics.FaultReport`
the way ``cudaGetLastError`` + ``compute-sanitizer`` would describe it.
``faults`` accepts a :class:`~repro.gpusim.faults.FaultInjector` consulted at
every interpreter hook point.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..minicuda.nodes import Kernel, PointerType
from ..minicuda.parser import parse_kernel
from ..prof.counters import KernelProfile
from . import scheduler
from .compile import compile_kernel, kernel_uses_atomics
from .megablock import (
    MegaProfile,
    MegablockExecutor,
    compile_megablock,
    megablock_flatten,
)
from .pool import LaunchSpec
from .resilience import ResilienceConfig, ResilienceTelemetry, get_breaker
from .device import DeviceSpec, GTX680
from .diagnostics import FaultContext, FaultReport
from .errors import LaunchError, SimError
from .interp import WARP_SIZE, BlockExecutor, WarpScaffold
from .memory import ConstArray, GlobalMemory, dtype_for
from .occupancy import Occupancy, ResourceUsage, compute_occupancy
from .racecheck import Sanitizer, SanitizerReport
from .stats import AccessTrace, KernelStats
from .timing import TimingResult, estimate_kernel_time

Dim = Union[int, tuple[int, ...]]


def _as_dim3(value: Dim) -> tuple[int, int, int]:
    if isinstance(value, int):
        value = (value,)
    given = tuple(int(v) for v in value)
    if len(given) > 3:
        raise LaunchError(
            f"dimensions are at most 3-D, got {len(given)} components: {value!r}"
        )
    dims = given + (1, 1, 1)
    if any(v <= 0 for v in dims[:3]):
        raise LaunchError(f"dimensions must be positive, got {value!r}")
    return dims[:3]


@dataclass
class LaunchResult:
    """Everything a host program learns from one simulated launch.

    A *failed* launch (``on_error="status"``) still returns a result:
    :attr:`error` carries the located :class:`FaultReport`, :attr:`ok` is
    False, and the model outputs (:attr:`occupancy`, :attr:`timing`,
    :attr:`usage`) are ``None`` — like device memory after a sticky CUDA
    error, the partial statistics are retained for post-mortem only.
    """

    kernel_name: str
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    device: DeviceSpec
    stats: KernelStats
    occupancy: Optional[Occupancy]
    timing: Optional[TimingResult]
    usage: Optional[ResourceUsage]
    gmem: GlobalMemory
    trace: AccessTrace = field(default_factory=AccessTrace)
    sampled_blocks: Optional[int] = None
    #: The exact (ascending, deduplicated) linear block IDs executed when
    #: ``sample_blocks`` sampled the grid; None for a full-grid launch.
    sampled_block_ids: Optional[tuple[int, ...]] = None
    #: Execution backend that ran the launch: "interp", "compiled" or
    #: "megablock".
    backend: str = "interp"
    #: Worker-process count when the parallel block scheduler ran this
    #: launch; None when blocks executed sequentially.
    parallel_workers: Optional[int] = None
    #: Why a *requested* parallel launch (>= 2 resolved workers) ran
    #: sequentially instead; None when it ran parallel or was never
    #: requested.  One of: "single-block", "trace", "faults", "sanitizer",
    #: "atomics", "unavailable", "worker-fault", "breaker-open".
    parallel_fallback: Optional[str] = None
    #: Why a *requested* megablock launch (``backend="megablock"``) executed
    #: blocks through the per-block compiled engine instead of the batched
    #: block axis; None when batching ran (or was never requested).  One of:
    #: "single-block", "trace", "faults", "sanitizer", "atomic-order" (the
    #: kernel uses atomics but cannot flatten the warp axis, so the batch
    #: could not reproduce sequential atomic order — see
    #: :func:`~repro.gpusim.megablock.megablock_flatten`),
    #: "sim-fault" (the batched attempt raised, global memory was restored
    #: from the launch snapshot, and the per-block rerun reproduced the
    #: exact semantics).  :attr:`backend` stays "megablock" either way.
    megablock_fallback: Optional[str] = None
    #: Whether the batched megablock run folded the warp axis into the batch
    #: (megawarp: one ``(blocks × warps, lanes)`` stack, the only mode that
    #: executes atomics).  True/False when the batched engine ran, None when
    #: it fell back or was never requested.
    megablock_megawarp: Optional[bool] = None
    #: Resilience telemetry of the parallel attempt (attempts, retries,
    #: deadline kills, breaker state, pool lifecycle events), when this
    #: launch requested parallelism and reached the scheduler; None
    #: otherwise.  See :class:`~repro.gpusim.resilience.ResilienceTelemetry`.
    resilience: Optional[ResilienceTelemetry] = None
    #: Per-line/per-block hotspot counters, when the launch ran with
    #: ``profile=True`` (None otherwise).  Bit-identical between the
    #: interp and compiled backends and between sequential and parallel
    #: scheduling.
    profile: Optional[KernelProfile] = None
    error: Optional[FaultReport] = None
    #: Racecheck/initcheck findings, when the launch ran under
    #: ``racecheck=True`` / ``initcheck=True`` (None otherwise).  Present
    #: even on a failed launch: findings before the fault are retained.
    sanitizer: Optional[SanitizerReport] = None

    @property
    def ok(self) -> bool:
        """True when the launch ran to completion without a fault."""
        return self.error is None

    def raise_if_failed(self) -> None:
        """Re-raise the captured fault (no-op on a successful launch)."""
        if self.error is not None:
            raise SimError(self.error.message, ctx=self.error.ctx)

    def buffer(self, name: str) -> np.ndarray:
        """Final contents of the global buffer bound to parameter ``name``."""
        if name not in self.gmem:
            if self.error is not None:
                raise SimError(
                    f"buffer {name!r} unavailable: launch failed with "
                    f"{self.error.summary()}",
                    ctx=self.error.ctx,
                )
            raise KeyError(name)
        return self.gmem[name].data

    @property
    def total_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    @property
    def total_warps(self) -> int:
        return self.total_blocks * math.ceil(self.threads_per_block / WARP_SIZE)

    @property
    def milliseconds(self) -> float:
        self.raise_if_failed()
        assert self.timing is not None
        return self.timing.milliseconds


def launch(
    kernel: Kernel,
    grid: Dim,
    block: Dim,
    args: Mapping[str, Union[np.ndarray, int, float]],
    device: DeviceSpec = GTX680,
    const_arrays: Optional[Mapping[str, np.ndarray]] = None,
    usage: Optional[ResourceUsage] = None,
    sample_blocks: Optional[int] = None,
    trace: bool = False,
    on_error: str = "raise",
    faults=None,
    synccheck: bool = False,
    racecheck: bool = False,
    initcheck: bool = False,
    backend: Optional[str] = None,
    parallel: Optional[Union[int, bool, str]] = None,
    profile: bool = False,
    resilience: Optional[ResilienceConfig] = None,
    cache_dir: Optional[str] = None,
) -> LaunchResult:
    """Simulate one kernel launch.

    ``args`` maps parameter names to numpy arrays (allocated as global
    buffers; the result exposes their final contents) or scalars.
    ``const_arrays`` binds texture references / constant buffers accessed by
    name inside the kernel.  ``sample_blocks`` runs only that many evenly
    spaced blocks and extrapolates the statistics — functional output is then
    partial, so use it for timing-only studies.

    ``on_error="raise"`` (default) propagates simulator faults as located
    exceptions; ``on_error="status"`` contains them and returns a
    :class:`LaunchResult` whose :attr:`LaunchResult.error` describes the
    fault.  ``faults`` is an optional
    :class:`~repro.gpusim.faults.FaultInjector`.

    ``synccheck=True`` enables strict barrier validation (the analogue of
    ``compute-sanitizer --tool synccheck``): every non-exited lane must be
    active at each ``__syncthreads``, and all warps must wait at the same
    textual barrier.  The default matches pre-Volta hardware, where a
    warp's arrival at any barrier counts — behaviour the paper's generated
    master/slave kernels (barriers under divergent ``if``) depend on.

    ``racecheck=True`` / ``initcheck=True`` run the launch under the
    :mod:`~repro.gpusim.racecheck` sanitizer (the analogues of
    ``compute-sanitizer --tool racecheck`` / ``--tool initcheck``): shared
    write/read hazards between warps not ordered by a barrier, and reads of
    never-written shared or local elements, are collected — without aborting
    the launch — into :attr:`LaunchResult.sanitizer`.

    ``backend`` selects the execution engine: ``"interp"`` (the reference
    tree-walking interpreter) or ``"compiled"`` (the closure-compiled engine
    of :mod:`repro.gpusim.compile`, cached across launches).  ``None`` defers
    to the ``GPUSIM_BACKEND`` environment variable, defaulting to
    ``"interp"``.  Both backends produce bit-identical results.

    ``parallel`` enables the block scheduler: an int worker count, ``True``
    or ``"auto"`` for one worker per CPU (``None`` defers to
    ``GPUSIM_PARALLEL``).  Blocks fan out across forked worker processes
    only when no feature needs the exact sequential interleaving — tracing,
    fault injection, the sanitizers, and kernels using ``atomicAdd``
    (cross-block accumulation) all fall back to sequential execution, as
    does any worker fault (the launch reruns sequentially for exact fault
    semantics).  :attr:`LaunchResult.parallel_workers` reports what ran,
    and :attr:`LaunchResult.parallel_fallback` names the reason whenever a
    requested parallel launch ran sequentially.

    ``profile=True`` collects per-source-line hotspot counters and
    per-block cost records into :attr:`LaunchResult.profile` (a
    :class:`~repro.prof.counters.KernelProfile`); see :mod:`repro.prof`
    for the Chrome-trace exporter and terminal reports.  Profiles are
    bit-identical across backends and across sequential/parallel
    scheduling.

    ``resilience`` overrides the parallel path's
    :class:`~repro.gpusim.resilience.ResilienceConfig` (pool mode,
    per-chunk deadline, retry budget, circuit-breaker threshold); ``None``
    reads the ``GPUSIM_POOL`` / ``GPUSIM_LAUNCH_TIMEOUT`` /
    ``GPUSIM_MAX_RETRIES`` / ``GPUSIM_BREAKER_THRESHOLD`` environment
    knobs.  A parallel launch's journey down the degradation ladder
    (parallel → fewer workers → sequential) lands on
    :attr:`LaunchResult.resilience`, and a tripped circuit breaker makes
    later launches fall back with reason ``"breaker-open"`` until its
    half-open probe succeeds.  An injector whose specs are *all* worker
    faults (``worker_crash`` / ``worker_hang`` / ``worker_slow``) does not
    force the sequential path: the pool resolves those specs itself.

    ``cache_dir`` activates the process-wide persistent cache tier rooted
    at that directory (equivalent to exporting ``GPUSIM_CACHE_DIR``):
    NP-transformed variants and autotune outcomes become content-addressed
    disk entries shared across processes — see :mod:`repro.gpusim.diskcache`.
    The setting is sticky for the process; pass it once.
    """
    if cache_dir is not None:
        from . import diskcache

        diskcache.configure(cache_dir)
    if on_error not in ("raise", "status"):
        raise ValueError(f"on_error must be 'raise' or 'status', got {on_error!r}")
    backend_name = (
        backend if backend is not None else os.environ.get("GPUSIM_BACKEND") or "interp"
    )
    if backend_name not in ("interp", "compiled", "megablock"):
        raise ValueError(
            "backend must be 'interp', 'compiled' or 'megablock', "
            f"got {backend_name!r}"
        )

    stats = KernelStats()
    access_trace = AccessTrace(enabled=trace)
    sanitizer = (
        Sanitizer(racecheck=racecheck, initcheck=initcheck)
        if (racecheck or initcheck)
        else None
    )
    gmem = GlobalMemory()
    grid3: tuple[int, int, int] = (1, 1, 1)
    block3: tuple[int, int, int] = (1, 1, 1)
    executed = 0
    total_blocks = 1
    shared_bytes = 0
    sampled_ids: Optional[tuple[int, ...]] = None
    parallel_workers: Optional[int] = None
    parallel_fallback: Optional[str] = None
    megablock_fallback: Optional[str] = None
    megablock_megawarp: Optional[bool] = None
    telemetry: Optional[ResilienceTelemetry] = None
    res_cfg = resilience if resilience is not None else ResilienceConfig.from_env()
    prof_obj = KernelProfile(kernel=kernel.name) if profile else None
    try:
        grid3 = _as_dim3(grid)
        block3 = _as_dim3(block)
        threads_per_block = block3[0] * block3[1] * block3[2]
        if threads_per_block > device.max_threads_per_block:
            raise LaunchError(
                f"block {block3} has {threads_per_block} threads; device limit is "
                f"{device.max_threads_per_block}"
            )

        # --- bind arguments ------------------------------------------------
        base_env: dict = {}
        param_names = {p.name for p in kernel.params}
        missing = param_names - set(args)
        if missing:
            raise LaunchError(f"missing kernel arguments: {sorted(missing)}")
        extra = set(args) - param_names
        if extra:
            raise LaunchError(f"unknown kernel arguments: {sorted(extra)}")
        scalar_args: dict = {}
        for param in kernel.params:
            value = args[param.name]
            if isinstance(param.type, PointerType):
                if not isinstance(value, np.ndarray):
                    raise LaunchError(f"parameter {param.name!r} expects an array")
                expected = dtype_for(param.type.elem.name)
                buf = gmem.alloc(param.name, np.asarray(value, dtype=expected))
                base_env[param.name] = buf
            else:
                if isinstance(value, np.ndarray):
                    raise LaunchError(f"parameter {param.name!r} expects a scalar")
                base_env[param.name] = (
                    float(value) if param.type.name == "float" else int(value)
                )
                scalar_args[param.name] = base_env[param.name]
        for cname, cdata in (const_arrays or {}).items():
            base_env[cname] = ConstArray(cname, np.asarray(cdata))

        # --- fault injection: the launch itself may be dropped --------------
        if faults is not None:
            faults.begin_launch(kernel.name, grid3, block3)

        # --- compile / scaffold ---------------------------------------------
        # Both are launch-invariant: the closure program is cached across
        # launches by source digest, the warp scaffolding is shared by every
        # block of this launch.
        # The megablock backend keeps the per-block closure program around
        # too: it is the exact-semantics engine every ineligible or faulted
        # batch falls back to.
        program = (
            compile_kernel(kernel, profile=profile)
            if backend_name in ("compiled", "megablock")
            else None
        )
        scaffold = WarpScaffold(kernel, block3, grid3)

        # --- execute blocks --------------------------------------------------
        gx, gy, gz = grid3
        total_blocks = gx * gy * gz
        if sample_blocks is not None and sample_blocks < 1:
            # Guard the two divisions downstream (step spacing, stats
            # extrapolation): 0 or negative sampling is a caller bug and
            # must surface as a launch error, not a ZeroDivisionError.
            raise LaunchError(
                f"sample_blocks must be >= 1, got {sample_blocks}"
            )
        if sample_blocks is not None and sample_blocks < total_blocks:
            step = total_blocks / sample_blocks
            # Evenly spaced IDs collide after int() truncation when
            # sample_blocks doesn't divide the grid; dedupe preserving the
            # ascending generation order (dict keeps insertion order) so the
            # executed set is deterministic and documented on the result.
            block_ids = list(
                dict.fromkeys(int(i * step) for i in range(sample_blocks))
            )
            sampled_ids = tuple(block_ids)
        else:
            block_ids = list(range(total_blocks))

        def run_block(
            linear: int,
            stats_obj: KernelStats,
            profile_obj: Optional[KernelProfile],
        ) -> int:
            bz_i, rem = divmod(linear, gx * gy)
            by_i, bx_i = divmod(rem, gx)
            executor = BlockExecutor(
                kernel,
                block_idx=(bx_i, by_i, bz_i),
                block_dim=block3,
                grid_dim=grid3,
                base_env=base_env,
                stats=stats_obj,
                trace=access_trace,
                injector=faults,
                linear_block=linear,
                synccheck=synccheck,
                sanitizer=sanitizer,
                scaffold=scaffold,
                program=program,
                profile=profile_obj,
            )
            executor.run()
            return executor.shared_bytes

        workers = scheduler.resolve_workers(parallel)
        uses_atomics = (
            program.uses_atomics if program is not None else kernel_uses_atomics(kernel)
        )
        # An injector whose every spec targets the worker pool needs no
        # interpreter hooks, so it does not force the sequential path: the
        # scheduler resolves those specs deterministically at dispatch.
        faults_worker_only = faults is not None and faults.worker_only()
        # Megablock eligibility: anything needing per-block interpreter
        # hooks (trace, sim-faults, sanitizers) runs per block; the reason
        # is observable on the result.  Atomics are batch-safe since the
        # deterministic sort-by-address fold, but only under the flattened
        # (megawarp) row order — when a kernel uses atomics and this launch
        # cannot flatten, it falls back with reason "atomic-order".
        mega_program = None
        if backend_name == "megablock":
            if len(block_ids) < 2:
                megablock_fallback = "single-block"
            elif trace:
                megablock_fallback = "trace"
            elif faults is not None and not faults_worker_only:
                megablock_fallback = "faults"
            elif sanitizer is not None:
                megablock_fallback = "sanitizer"
            else:
                candidate = compile_megablock(kernel, profile=profile)
                if candidate.uses_atomics and not (
                    candidate.atomics_exact
                    and megablock_flatten(
                        candidate,
                        scaffold.num_warps,
                        bool(scaffold.shared_decls),
                        synccheck,
                    )
                ):
                    megablock_fallback = "atomic-order"
                else:
                    mega_program = candidate
        # Record *why* a requested parallel launch degrades to sequential
        # execution — only when parallelism was actually requested (>= 2
        # resolved workers), so plain sequential launches stay None.
        if workers >= 2:
            if len(block_ids) < 2:
                parallel_fallback = "single-block"
            elif trace:
                parallel_fallback = "trace"
            elif faults is not None and not faults_worker_only:
                parallel_fallback = "faults"
            elif sanitizer is not None:
                parallel_fallback = "sanitizer"
            elif uses_atomics:
                parallel_fallback = "atomics"
            elif not scheduler.available():
                parallel_fallback = "unavailable"
            else:
                # The attempt will reach the scheduler: make it observable.
                telemetry = ResilienceTelemetry(pool_mode=res_cfg.pool_mode)
                breaker = get_breaker()
                if not breaker.allow(res_cfg):
                    parallel_fallback = "breaker-open"
                    telemetry.breaker_state = breaker.state
                    telemetry.degraded = "sequential"
                    telemetry.record(
                        "breaker-skip",
                        "circuit breaker open; running sequentially",
                    )
        ran_parallel = False
        if workers >= 2 and parallel_fallback is None:
            breaker = get_breaker()
            trips_before = breaker.trips
            spec = LaunchSpec(
                kernel=kernel,
                grid=grid3,
                block=block3,
                gmem=gmem,
                scalars=scalar_args,
                const_arrays={
                    cname: np.asarray(cdata)
                    for cname, cdata in (const_arrays or {}).items()
                },
                backend=(
                    # Workers batch each chunk's block axis only when the
                    # launch itself is batch-eligible; an ineligible
                    # megablock launch runs per block in the workers too.
                    backend_name
                    if not (backend_name == "megablock" and mega_program is None)
                    else "compiled"
                ),
                synccheck=synccheck,
                profile_kernel=kernel.name if profile else None,
            )
            outcome = scheduler.execute_blocks(
                run_block,
                block_ids,
                gmem,
                workers,
                profile=prof_obj,
                spec=spec,
                config=res_cfg,
                telemetry=telemetry,
                injector=faults if faults_worker_only else None,
            )
            breaker.record_result(telemetry.worker_faults, res_cfg)
            telemetry.breaker_trips = breaker.trips - trips_before
            telemetry.breaker_state = breaker.state
            if outcome is not None:
                stats.merge(outcome.stats)
                executed = outcome.executed
                shared_bytes = outcome.shared_bytes
                parallel_workers = outcome.workers
                ran_parallel = True
            else:
                # Set before the rerun: if the sequential rerun faults too,
                # the error-path result still explains the degradation.
                parallel_fallback = "worker-fault"
                telemetry.degraded = "sequential"
        if not ran_parallel:
            ran_megablock = False
            if mega_program is not None and parallel_fallback != "worker-fault":
                # Batched execution is speculative: snapshot global memory,
                # run the whole block axis at once, and on ANY SimError
                # restore the snapshot and rerun per block — the rerun
                # reproduces the exact located fault and semantics.
                snapshot = {
                    name: buf.data.copy()
                    for name, buf in gmem.buffers().items()
                }
                mb_stats = KernelStats()
                mb_prof = (
                    MegaProfile(
                        kernel.name,
                        block_ids,
                        scaffold.num_warps,
                        scaffold.total_threads,
                    )
                    if profile
                    else None
                )
                try:
                    mb_executor = MegablockExecutor(
                        kernel,
                        block_ids,
                        block3,
                        grid3,
                        base_env,
                        mb_stats,
                        mega_program,
                        synccheck=synccheck,
                        scaffold=scaffold,
                        profile=mb_prof,
                    )
                    mb_executor.run()
                except SimError:
                    for name, buf in gmem.buffers().items():
                        buf.data[...] = snapshot[name]
                    megablock_fallback = "sim-fault"
                else:
                    stats.merge(mb_stats)
                    if mb_prof is not None:
                        mb_prof.finish(prof_obj)
                    shared_bytes = mb_executor.shared_bytes
                    executed += len(block_ids)
                    ran_megablock = True
                    megablock_megawarp = mb_executor.flatten
            if not ran_megablock:
                for linear in block_ids:
                    shared_bytes = run_block(linear, stats, prof_obj)
                    executed += 1
    except SimError as exc:
        if exc.ctx is None:
            exc.attach(
                FaultContext(
                    kernel=kernel.name,
                    grid=grid3,
                    block_dim=block3,
                    provenance=getattr(kernel, "provenance", None),
                )
            )
        if on_error == "raise":
            raise
        report = FaultReport.from_exception(exc, kernel=kernel.name)
        return LaunchResult(
            kernel_name=kernel.name,
            grid=grid3,
            block=block3,
            device=device,
            stats=stats,
            occupancy=None,
            timing=None,
            usage=None,
            gmem=gmem,
            trace=access_trace,
            sampled_blocks=executed or None,
            sampled_block_ids=sampled_ids,
            backend=backend_name,
            parallel_workers=parallel_workers,
            parallel_fallback=parallel_fallback,
            megablock_fallback=megablock_fallback,
            megablock_megawarp=megablock_megawarp,
            resilience=telemetry,
            profile=prof_obj,
            error=report,
            sanitizer=sanitizer.report() if sanitizer is not None else None,
        )

    timing_stats = stats
    if executed < total_blocks:
        timing_stats = stats.scaled(total_blocks / executed)

    # --- resources / occupancy / timing --------------------------------------
    if usage is None:
        from ..analysis.resources import estimate_resources

        report = estimate_resources(kernel)
        usage = ResourceUsage(
            reg_bytes_per_thread=report.reg_bytes_per_thread,
            shared_bytes_per_block=max(report.shared_bytes_per_block, shared_bytes),
            local_bytes_per_thread=report.local_bytes_per_thread,
        )
    occupancy = compute_occupancy(device, threads_per_block, usage)
    total_warps = total_blocks * math.ceil(threads_per_block / WARP_SIZE)
    timing = estimate_kernel_time(
        device, timing_stats, occupancy, usage, total_warps=total_warps
    )

    return LaunchResult(
        kernel_name=kernel.name,
        grid=grid3,
        block=block3,
        device=device,
        stats=stats,
        occupancy=occupancy,
        timing=timing,
        usage=usage,
        gmem=gmem,
        trace=access_trace,
        sampled_blocks=executed if executed < total_blocks else None,
        sampled_block_ids=sampled_ids,
        backend=backend_name,
        parallel_workers=parallel_workers,
        parallel_fallback=parallel_fallback,
        megablock_fallback=megablock_fallback,
        megablock_megawarp=megablock_megawarp,
        resilience=telemetry,
        profile=prof_obj,
        sanitizer=sanitizer.report() if sanitizer is not None else None,
    )


def run_kernel(
    source_or_kernel: Union[str, Kernel],
    grid: Dim,
    block: Dim,
    args: Mapping[str, Union[np.ndarray, int, float]],
    **kwargs,
) -> LaunchResult:
    """Convenience wrapper: accepts kernel source text or a parsed kernel."""
    kernel = (
        parse_kernel(source_or_kernel)
        if isinstance(source_or_kernel, str)
        else source_or_kernel
    )
    return launch(kernel, grid, block, args, **kwargs)
