"""Kernel launch API: the simulator's host-side runtime.

``launch`` plays the role of ``kernel<<<grid, block>>>(args)``: it allocates
global buffers for array arguments, runs every thread block through the SIMT
interpreter (optionally sampling blocks for very large grids), and combines
the collected statistics with the occupancy calculator and the Hong–Kim
timing model into a :class:`LaunchResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..minicuda.nodes import Kernel, PointerType
from ..minicuda.parser import parse_kernel
from .device import DeviceSpec, GTX680
from .errors import LaunchError
from .interp import WARP_SIZE, BlockExecutor
from .memory import ConstArray, GlobalMemory, dtype_for
from .occupancy import Occupancy, ResourceUsage, compute_occupancy
from .stats import AccessTrace, KernelStats
from .timing import TimingResult, estimate_kernel_time

Dim = Union[int, tuple[int, ...]]


def _as_dim3(value: Dim) -> tuple[int, int, int]:
    if isinstance(value, int):
        value = (value,)
    dims = tuple(int(v) for v in value) + (1, 1, 1)
    if any(v <= 0 for v in dims[:3]):
        raise LaunchError(f"dimensions must be positive, got {value!r}")
    return dims[:3]


@dataclass
class LaunchResult:
    """Everything a host program learns from one simulated launch."""

    kernel_name: str
    grid: tuple[int, int, int]
    block: tuple[int, int, int]
    device: DeviceSpec
    stats: KernelStats
    occupancy: Occupancy
    timing: TimingResult
    usage: ResourceUsage
    gmem: GlobalMemory
    trace: AccessTrace = field(default_factory=AccessTrace)
    sampled_blocks: Optional[int] = None

    def buffer(self, name: str) -> np.ndarray:
        """Final contents of the global buffer bound to parameter ``name``."""
        return self.gmem[name].data

    @property
    def total_blocks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    @property
    def total_warps(self) -> int:
        return self.total_blocks * math.ceil(self.threads_per_block / WARP_SIZE)

    @property
    def milliseconds(self) -> float:
        return self.timing.milliseconds


def launch(
    kernel: Kernel,
    grid: Dim,
    block: Dim,
    args: Mapping[str, Union[np.ndarray, int, float]],
    device: DeviceSpec = GTX680,
    const_arrays: Optional[Mapping[str, np.ndarray]] = None,
    usage: Optional[ResourceUsage] = None,
    sample_blocks: Optional[int] = None,
    trace: bool = False,
) -> LaunchResult:
    """Simulate one kernel launch.

    ``args`` maps parameter names to numpy arrays (allocated as global
    buffers; the result exposes their final contents) or scalars.
    ``const_arrays`` binds texture references / constant buffers accessed by
    name inside the kernel.  ``sample_blocks`` runs only that many evenly
    spaced blocks and extrapolates the statistics — functional output is then
    partial, so use it for timing-only studies.
    """
    grid3 = _as_dim3(grid)
    block3 = _as_dim3(block)
    threads_per_block = block3[0] * block3[1] * block3[2]
    if threads_per_block > device.max_threads_per_block:
        raise LaunchError(
            f"block {block3} has {threads_per_block} threads; device limit is "
            f"{device.max_threads_per_block}"
        )

    # --- bind arguments ----------------------------------------------------
    gmem = GlobalMemory()
    base_env: dict = {}
    param_names = {p.name for p in kernel.params}
    missing = param_names - set(args)
    if missing:
        raise LaunchError(f"missing kernel arguments: {sorted(missing)}")
    extra = set(args) - param_names
    if extra:
        raise LaunchError(f"unknown kernel arguments: {sorted(extra)}")
    for param in kernel.params:
        value = args[param.name]
        if isinstance(param.type, PointerType):
            if not isinstance(value, np.ndarray):
                raise LaunchError(f"parameter {param.name!r} expects an array")
            expected = dtype_for(param.type.elem.name)
            buf = gmem.alloc(param.name, np.asarray(value, dtype=expected))
            base_env[param.name] = buf
        else:
            if isinstance(value, np.ndarray):
                raise LaunchError(f"parameter {param.name!r} expects a scalar")
            base_env[param.name] = (
                float(value) if param.type.name == "float" else int(value)
            )
    for cname, cdata in (const_arrays or {}).items():
        base_env[cname] = ConstArray(cname, np.asarray(cdata))

    # --- execute blocks -----------------------------------------------------
    stats = KernelStats()
    access_trace = AccessTrace(enabled=trace)
    gx, gy, gz = grid3
    total_blocks = gx * gy * gz
    if sample_blocks is not None and sample_blocks < total_blocks:
        step = total_blocks / sample_blocks
        block_ids = sorted({int(i * step) for i in range(sample_blocks)})
    else:
        block_ids = list(range(total_blocks))

    shared_bytes = 0
    for linear in block_ids:
        bz_i, rem = divmod(linear, gx * gy)
        by_i, bx_i = divmod(rem, gx)
        executor = BlockExecutor(
            kernel,
            block_idx=(bx_i, by_i, bz_i),
            block_dim=block3,
            grid_dim=grid3,
            base_env=base_env,
            stats=stats,
            trace=access_trace,
        )
        shared_bytes = executor.shared_bytes
        executor.run()

    executed = len(block_ids)
    timing_stats = stats
    if executed < total_blocks:
        timing_stats = stats.scaled(total_blocks / executed)

    # --- resources / occupancy / timing --------------------------------------
    if usage is None:
        from ..analysis.resources import estimate_resources

        report = estimate_resources(kernel)
        usage = ResourceUsage(
            reg_bytes_per_thread=report.reg_bytes_per_thread,
            shared_bytes_per_block=max(report.shared_bytes_per_block, shared_bytes),
            local_bytes_per_thread=report.local_bytes_per_thread,
        )
    occupancy = compute_occupancy(device, threads_per_block, usage)
    total_warps = total_blocks * math.ceil(threads_per_block / WARP_SIZE)
    timing = estimate_kernel_time(
        device, timing_stats, occupancy, usage, total_warps=total_warps
    )

    return LaunchResult(
        kernel_name=kernel.name,
        grid=grid3,
        block=block3,
        device=device,
        stats=stats,
        occupancy=occupancy,
        timing=timing,
        usage=usage,
        gmem=gmem,
        trace=access_trace,
        sampled_blocks=executed if executed < total_blocks else None,
    )


def run_kernel(
    source_or_kernel: Union[str, Kernel],
    grid: Dim,
    block: Dim,
    args: Mapping[str, Union[np.ndarray, int, float]],
    **kwargs,
) -> LaunchResult:
    """Convenience wrapper: accepts kernel source text or a parsed kernel."""
    kernel = (
        parse_kernel(source_or_kernel)
        if isinstance(source_or_kernel, str)
        else source_or_kernel
    )
    return launch(kernel, grid, block, args, **kwargs)
