"""Supervised persistent worker pool for the parallel block scheduler.

The original scheduler forked a throwaway ``multiprocessing.Pool`` per
launch and called ``pool.map`` with no timeout: a hung or SIGKILLed worker
deadlocked the launch forever, and one failed chunk discarded every
completed chunk.  This module replaces that with a *supervised, persistent*
runtime:

- **Long-lived workers.**  Workers are forked once and survive across
  launches; per-launch work arrives over a per-worker duplex pipe as a
  picklable :class:`LaunchSpec` broadcast followed by chunk messages.  Each
  worker keeps its own closure-compile cache warm across launches, so a hot
  serving loop stops paying the per-launch fork *and* the per-process
  lowering cost.
- **Health checking.**  Every worker runs a daemon heartbeat thread that
  stamps a shared ``monotonic`` cell; :meth:`WorkerPool.health` exposes
  liveness, heartbeat age, and completed-task counts.
- **Deadlines.**  The parent's supervision loop is the watchdog: every
  dispatched chunk carries a deadline
  (:attr:`~repro.gpusim.resilience.ResilienceConfig.effective_chunk_timeout`);
  a worker that blows it is SIGKILLed and replaced.  The launch can no
  longer block indefinitely.
- **Chunk-level retry.**  Only the failed chunk is re-dispatched (bounded
  by ``max_retries``, with seeded jittered backoff).  Completed chunks are
  never re-executed, which preserves the ascending-merge bit-identity
  contract: every chunk's write-set is computed against the launch-pristine
  buffer snapshot (workers restore their buffers after each chunk), so a
  chunk's writes are a pure function of the chunk id and the merge applies
  them in ascending chunk order exactly like the sequential path.
- **Graceful degradation.**  Worker replacement is budgeted
  (``max_respawns``); past the budget the launch finishes on the surviving
  workers (``degraded="reduced"``), and if retries are exhausted or no
  workers survive the launch falls back to the exact-semantics sequential
  path (``degraded="sequential"``).  A :class:`~repro.gpusim.resilience.
  CircuitBreaker` (consulted by ``launch()``) stops requesting parallelism
  at all after repeated faults.

A worker that reports a *simulator* fault (:class:`SimError` inside the
kernel) still aborts the whole parallel attempt — fault semantics (partial
stats, located context) must be exactly those of the sequential rerun, so
sim faults are never retried.
"""

from __future__ import annotations

import atexit
import collections
import os
import pickle
import random
import signal
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence

import multiprocessing
import numpy as np

from ..prof.counters import KernelProfile
from .errors import SimError
from .memory import ConstArray, GlobalMemory
from .resilience import ResilienceConfig, ResilienceTelemetry, jittered_backoff
from .stats import AccessTrace, KernelStats

#: Exit code used by the injected ``worker_crash`` fault (visible in events).
CRASH_EXIT_CODE = 13


@dataclass
class ParallelOutcome:
    """Successful parallel execution, already merged into the parent state."""

    stats: KernelStats
    executed: int
    shared_bytes: int
    workers: int


@dataclass(frozen=True)
class LaunchSpec:
    """Everything a worker needs to rebuild one launch's execution state.

    Shipped (pickled) over the worker pipe once per launch; deliberately
    contains no closures — the worker recompiles the kernel through its own
    process-local LRU (warm across launches) and rebuilds the warp scaffold.
    """

    kernel: object                      # minicuda Kernel AST
    grid: tuple
    block: tuple
    gmem: GlobalMemory
    scalars: dict
    const_arrays: dict                  # name -> ndarray
    backend: str
    synccheck: bool
    profile_kernel: Optional[str]       # kernel name when profiling, else None


class _WorkerState:
    """Worker-side execution state rebuilt from a :class:`LaunchSpec`."""

    def __init__(self, spec: LaunchSpec):
        from .compile import compile_kernel
        from .interp import BlockExecutor, WarpScaffold
        from .megablock import MegaProfile, MegablockExecutor, compile_megablock

        self._BlockExecutor = BlockExecutor
        self._MegablockExecutor = MegablockExecutor
        self._MegaProfile = MegaProfile
        self.spec = spec
        self.gmem = spec.gmem
        self.base_env: dict = dict(spec.scalars)
        for name, buf in self.gmem.buffers().items():
            self.base_env[name] = buf
        for cname, arr in spec.const_arrays.items():
            self.base_env[cname] = ConstArray(cname, np.asarray(arr))
        self.program = (
            compile_kernel(spec.kernel, profile=spec.profile_kernel is not None)
            if spec.backend == "compiled"
            else None
        )
        # Megablock chunks batch the whole chunk's block axis through one
        # executor — which flattens the chunk's (blocks, warps) pair into a
        # single megawarp row axis when the kernel allows it, same rule as
        # the whole-grid launch.  A SimError (including an order-sensitive
        # atomic reaching the flat path; the launch ladder diverts those to
        # "atomic-order"/"atomics" before any pool is engaged) restores
        # pristine state and aborts the parallel attempt (exact semantics
        # come from the sequential rerun), so no per-block program is
        # needed alongside.
        self.mega_program = (
            compile_megablock(spec.kernel, profile=spec.profile_kernel is not None)
            if spec.backend == "megablock"
            else None
        )
        self.scaffold = WarpScaffold(spec.kernel, spec.block, spec.grid)
        self.trace = AccessTrace(enabled=False)
        #: Launch-pristine snapshot every chunk diffs against and restores to.
        self.before = {
            name: buf.data.copy() for name, buf in self.gmem.buffers().items()
        }

    def _restore(self) -> None:
        for name, buf in self.gmem.buffers().items():
            with np.errstate(invalid="ignore"):
                changed = buf.data != self.before[name]
            if changed.any():
                idx = np.nonzero(changed)[0]
                buf.data[idx] = self.before[name][idx]

    def run_chunk(self, blocks: Sequence[int]) -> dict:
        spec = self.spec
        stats = KernelStats()
        prof = (
            KernelProfile(kernel=spec.profile_kernel)
            if spec.profile_kernel is not None
            else None
        )
        gx, gy, _gz = spec.grid
        shared_bytes = 0
        try:
            if self.mega_program is not None:
                mb_prof = (
                    self._MegaProfile(
                        spec.profile_kernel,
                        blocks,
                        self.scaffold.num_warps,
                        self.scaffold.total_threads,
                    )
                    if prof is not None
                    else None
                )
                executor = self._MegablockExecutor(
                    spec.kernel,
                    list(blocks),
                    spec.block,
                    spec.grid,
                    self.base_env,
                    stats,
                    self.mega_program,
                    synccheck=spec.synccheck,
                    scaffold=self.scaffold,
                    profile=mb_prof,
                )
                executor.run()
                shared_bytes = executor.shared_bytes
                if mb_prof is not None:
                    mb_prof.finish(prof)
            else:
                for linear in blocks:
                    bz_i, rem = divmod(linear, gx * gy)
                    by_i, bx_i = divmod(rem, gx)
                    executor = self._BlockExecutor(
                        spec.kernel,
                        block_idx=(bx_i, by_i, bz_i),
                        block_dim=spec.block,
                        grid_dim=spec.grid,
                        base_env=self.base_env,
                        stats=stats,
                        trace=self.trace,
                        injector=None,
                        linear_block=linear,
                        synccheck=spec.synccheck,
                        sanitizer=None,
                        scaffold=self.scaffold,
                        program=self.program,
                        profile=prof,
                    )
                    executor.run()
                    shared_bytes = executor.shared_bytes
        except SimError:
            # Leave the state pristine for whatever runs on this worker next;
            # the parent aborts the parallel attempt and reruns sequentially.
            self._restore()
            raise
        writes = {}
        for name, buf in self.gmem.buffers().items():
            with np.errstate(invalid="ignore"):
                changed = buf.data != self.before[name]
            if changed.any():
                idx = np.nonzero(changed)[0]
                writes[name] = (idx, buf.data[idx].copy())
                # Restore pristine contents so a later chunk (or a retried
                # one) diffs against the same launch-entry state the
                # sequential semantics promise.
                buf.data[idx] = self.before[name][idx]
        return {
            "stats": stats,
            "profile": prof,
            "writes": writes,
            "shared_bytes": shared_bytes,
            "executed": len(blocks),
        }


def _worker_main(wid: int, conn, heartbeat, hb_interval: float,
                 close_fds: List[int]) -> None:
    """Entry point of one pool worker process."""
    for fd in close_fds:  # hygiene: drop inherited ends of other workers' pipes
        try:
            os.close(fd)
        except OSError:
            pass

    def _beat() -> None:
        while True:
            heartbeat.value = time.monotonic()
            time.sleep(hb_interval)

    threading.Thread(target=_beat, daemon=True, name="heartbeat").start()
    heartbeat.value = time.monotonic()
    conn.send(("ready", wid, os.getpid()))
    state: Optional[_WorkerState] = None
    state_seq = -1
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent went away
        kind = msg[0]
        if kind == "exit":
            break
        if kind == "launch":
            _, seq, spec = msg
            state = _WorkerState(spec)
            state_seq = seq
            continue
        if kind == "task":
            # Generic independent task (no launch broadcast, no shared
            # state): resolve the runner by dotted name — resolved here, not
            # at dispatch, because this worker may have been forked before
            # the runner's module was imported in the parent.
            _, seq, index, runner, payload, directive = msg
            conn.send(("start", wid, seq, index))
            if directive is not None:
                dkind, delay = directive
                if dkind == "worker_crash":
                    os._exit(CRASH_EXIT_CODE)
                elif dkind == "worker_hang":
                    while True:  # until the watchdog SIGKILLs us
                        time.sleep(60.0)
                elif dkind == "worker_slow":
                    time.sleep(delay)
            try:
                import importlib

                mod_name, func_name = runner.split(":")
                func = getattr(importlib.import_module(mod_name), func_name)
                out = func(payload)
            except Exception as exc:
                # Runner exceptions stay inside the payload: a task failure
                # must never look like a worker crash to the supervisor.
                out = {"task_error": f"{type(exc).__name__}: {exc}"}
            conn.send(("done", wid, seq, index, out))
            continue
        if kind != "chunk":  # pragma: no cover - protocol guard
            continue
        _, seq, index, blocks, directive = msg
        conn.send(("start", wid, seq, index))
        if directive is not None:
            dkind, delay = directive
            if dkind == "worker_crash":
                os._exit(CRASH_EXIT_CODE)
            elif dkind == "worker_hang":
                while True:  # until the watchdog SIGKILLs us
                    time.sleep(60.0)
            elif dkind == "worker_slow":
                time.sleep(delay)
        if state is None or state_seq != seq:  # pragma: no cover - stale seq
            conn.send(("sim-fault", wid, seq, index))
            continue
        try:
            payload = state.run_chunk(blocks)
        except SimError:
            conn.send(("sim-fault", wid, seq, index))
            continue
        conn.send(("done", wid, seq, index, payload))
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


@dataclass
class _Task:
    index: int
    blocks: List[int]
    attempt: int = 0


@dataclass
class _Worker:
    wid: int
    proc: object
    conn: object
    heartbeat: object
    launch_seq: int = -1
    task: Optional[_Task] = None
    deadline: float = 0.0
    tasks_done: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()


class WorkerPool:
    """Parent-side supervisor of the persistent worker fleet.

    One instance per process (see :func:`get_pool`).  ``run_launch`` is the
    single entry point; a :class:`threading.Lock` serializes launches so
    concurrent streams queue instead of interleaving chunk traffic.
    """

    def __init__(self) -> None:
        self._ctx = multiprocessing.get_context("fork")
        self._workers: Dict[int, _Worker] = {}
        self._next_wid = 0
        self._seq = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, config: ResilienceConfig,
               telemetry: Optional[ResilienceTelemetry] = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        heartbeat = self._ctx.Value("d", 0.0)
        wid = self._next_wid
        self._next_wid += 1
        close_fds = [w.conn.fileno() for w in self._workers.values()]
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, heartbeat, config.heartbeat_interval, close_fds),
            daemon=True,
            name=f"gpusim-pool-{wid}",
        )
        proc.start()
        child_conn.close()  # parent's copy — EOF now tracks the child's end
        worker = _Worker(wid=wid, proc=proc, conn=parent_conn, heartbeat=heartbeat)
        self._workers[wid] = worker
        if telemetry is not None:
            telemetry.record("worker-spawn", f"worker {wid}", worker=proc.pid)
        return worker

    def _discard(self, worker: _Worker) -> None:
        self._workers.pop(worker.wid, None)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _kill(self, worker: _Worker) -> None:
        if worker.alive:
            try:
                os.kill(worker.proc.pid, signal.SIGKILL)
            except (OSError, TypeError):  # pragma: no cover - already gone
                pass
        worker.proc.join(timeout=5.0)
        self._discard(worker)

    def ensure_workers(self, count: int, config: ResilienceConfig,
                       telemetry: Optional[ResilienceTelemetry] = None) -> None:
        for worker in [w for w in self._workers.values() if not w.alive]:
            self._discard(worker)
        while len(self._workers) < count:
            self._spawn(config, telemetry)

    def alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers.values() if w.alive]

    def health(self) -> List[dict]:
        """Per-worker health snapshot (pid, liveness, heartbeat age)."""
        now = time.monotonic()
        out = []
        for w in sorted(self._workers.values(), key=lambda w: w.wid):
            beat = w.heartbeat.value
            out.append(
                {
                    "wid": w.wid,
                    "pid": w.pid,
                    "alive": w.alive,
                    "heartbeat_age": (now - beat) if beat > 0 else None,
                    "tasks_done": w.tasks_done,
                    "busy": w.task is not None,
                }
            )
        return out

    def shutdown(self) -> None:
        with self._lock:
            for worker in list(self._workers.values()):
                try:
                    worker.conn.send(("exit",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for worker in list(self._workers.values()):
                worker.proc.join(timeout=1.0)
                if worker.alive:
                    self._kill(worker)
                else:
                    self._discard(worker)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: finish in-flight work, then retire every worker.

        Unlike :meth:`shutdown` (which assumes the pool is quiescent), drain
        first waits for the launch/task run currently holding the pool lock
        to complete — the server's SIGTERM path must not yank workers out
        from under a request that is already executing.  Returns True when
        every worker exited cleanly within ``timeout`` (``None`` = wait
        forever); stragglers are SIGKILLed and make the drain report False,
        so "no orphaned pool workers" is a checkable claim, not a hope.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        acquired = self._lock.acquire(
            timeout=-1 if deadline is None
            else max(deadline - time.monotonic(), 0.0)
        )
        if not acquired:
            return False
        clean = True
        try:
            for worker in list(self._workers.values()):
                try:
                    worker.conn.send(("exit",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for worker in list(self._workers.values()):
                join_for = (
                    5.0 if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                worker.proc.join(timeout=join_for)
                if worker.alive:
                    clean = False
                    self._kill(worker)
                else:
                    self._discard(worker)
        finally:
            self._lock.release()
        return clean

    # -- launch execution ----------------------------------------------------

    def run_launch(
        self,
        spec: LaunchSpec,
        chunks: List[List[int]],
        gmem: GlobalMemory,
        workers: int,
        config: ResilienceConfig,
        telemetry: ResilienceTelemetry,
        profile: Optional[KernelProfile] = None,
        injector=None,
    ) -> Optional[ParallelOutcome]:
        """Run ``chunks`` across the pool; None means "rerun sequentially".

        Parent memory (``gmem``) is only mutated on success, after every
        chunk's write-set arrived — exactly the legacy contract.
        """
        with self._lock:
            try:
                return self._run_locked(
                    spec, chunks, gmem, workers, config, telemetry, profile,
                    injector,
                )
            except (OSError, ValueError, TypeError, pickle.PicklingError) as exc:
                # Pipe/pickle trouble is an infrastructure failure, not a
                # simulator fault: degrade to the sequential path.
                telemetry.record("pool-error", f"{type(exc).__name__}: {exc}")
                return None

    def _run_locked(self, spec, chunks, gmem, workers, config, telemetry,
                    profile, injector) -> Optional[ParallelOutcome]:
        self._seq += 1
        seq = self._seq
        want = min(workers, len(chunks))
        telemetry.pool_mode = "persistent"
        telemetry.workers = want
        telemetry.chunks = len(chunks)
        self.ensure_workers(want, config, telemetry)
        in_use = sorted(self.alive_workers(), key=lambda w: w.wid)[:want]
        for worker in in_use:
            worker.conn.send(("launch", seq, spec))
            worker.launch_seq = seq
            worker.task = None

        pending = collections.deque(
            _Task(index=i, blocks=list(chunk)) for i, chunk in enumerate(chunks)
        )
        results: Dict[int, dict] = {}
        respawns_left = (
            config.max_respawns if config.max_respawns is not None else want * 2
        )
        rng = random.Random(config.seed)
        chunk_timeout = config.effective_chunk_timeout
        failed: Optional[str] = None

        def usable() -> List[_Worker]:
            return [
                w for w in self._workers.values()
                if w.alive and w.launch_seq == seq
            ]

        def retry_or_fail(task: _Task) -> None:
            nonlocal failed
            if task.attempt >= config.max_retries:
                failed = (
                    f"chunk {task.index} failed {task.attempt + 1} times "
                    f"(max_retries={config.max_retries})"
                )
                telemetry.record("retries-exhausted", failed, chunk=task.index)
                return
            delay = jittered_backoff(
                task.attempt, rng, config.backoff_base, config.backoff_cap
            )
            telemetry.retries += 1
            telemetry.record(
                "retry",
                f"chunk {task.index} attempt {task.attempt + 1} "
                f"after {delay * 1e3:.0f}ms backoff",
                chunk=task.index,
            )
            time.sleep(delay)
            pending.appendleft(
                _Task(index=task.index, blocks=task.blocks, attempt=task.attempt + 1)
            )

        def replace_worker() -> None:
            nonlocal respawns_left
            if respawns_left > 0:
                respawns_left -= 1
                telemetry.respawns += 1
                replacement = self._spawn(config, telemetry)
                replacement.conn.send(("launch", seq, spec))
                replacement.launch_seq = seq
            elif usable():
                if telemetry.degraded != "reduced":
                    telemetry.degraded = "reduced"
                    telemetry.record(
                        "degrade-reduced",
                        f"respawn budget exhausted; continuing on "
                        f"{len(usable())} worker(s)",
                    )
            # else: no workers left — the main loop fails the launch.

        def handle_death(worker: _Worker, reason: str) -> None:
            telemetry.worker_crashes += 1
            telemetry.record(
                "worker-crash",
                f"worker {worker.wid} {reason} (exitcode "
                f"{worker.proc.exitcode})",
                worker=worker.pid,
                chunk=worker.task.index if worker.task else None,
            )
            task = worker.task
            self._discard(worker)
            replace_worker()
            if task is not None:
                retry_or_fail(task)

        def reap_deaths() -> None:
            # Must scan the full worker map: a dead worker fails the
            # ``alive`` filter of usable(), so scanning usable() would
            # leak its in-flight task and spin forever.
            for worker in [
                w for w in list(self._workers.values())
                if w.launch_seq == seq and not w.alive
            ]:
                handle_death(worker, "died")
                if failed is not None:
                    return

        while failed is None and len(results) < len(chunks):
            reap_deaths()
            if failed is not None:
                break
            workers_now = usable()
            if not workers_now:
                if respawns_left > 0:
                    replace_worker()
                    continue
                failed = "no live workers remain"
                telemetry.record("no-workers", failed)
                break
            # Dispatch pending chunks to idle workers, lowest wid first.
            for worker in sorted(workers_now, key=lambda w: w.wid):
                if not pending:
                    break
                if worker.task is not None:
                    continue
                task = pending.popleft()
                directive = None
                if injector is not None:
                    directive = injector.poll_worker_fault(
                        spec.kernel.name, task.index, task.blocks,
                        worker_pid=worker.pid,
                    )
                    if directive is not None:
                        telemetry.record(
                            "inject-" + directive[0],
                            f"chunk {task.index} on worker {worker.wid}",
                            worker=worker.pid,
                            chunk=task.index,
                        )
                deadline = time.monotonic() + chunk_timeout
                if directive is not None and directive[0] == "worker_slow":
                    deadline += directive[1]
                worker.task = task
                worker.deadline = deadline
                telemetry.attempts += 1
                worker.conn.send(("chunk", seq, task.index, task.blocks, directive))

            busy = [w for w in usable() if w.task is not None]
            if not busy:
                continue  # dispatch again (e.g. after a respawn)
            now = time.monotonic()
            timeout = max(min(w.deadline for w in busy) - now, 0.0)
            waitables = [w.conn for w in usable()] + [
                w.proc.sentinel for w in usable()
            ]
            connection.wait(waitables, timeout=min(timeout + 0.01, 1.0))

            # Drain messages first: a result may have been queued before a
            # worker died, and it is still a perfectly good result.
            for worker in list(usable()):
                while True:
                    try:
                        if not worker.conn.poll():
                            break
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        break  # death handled below via the sentinel
                    kind = msg[0]
                    if kind == "ready":
                        continue
                    if msg[1] != worker.wid or msg[2] != seq:
                        continue  # stale message from an aborted launch
                    if kind == "start":
                        continue
                    if kind == "done":
                        _, _, _, index, payload = msg
                        results[index] = payload
                        worker.tasks_done += 1
                        worker.task = None
                    elif kind == "sim-fault":
                        telemetry.sim_faults += 1
                        telemetry.record(
                            "sim-fault",
                            f"chunk {msg[3]} hit a simulator fault",
                            worker=worker.pid,
                            chunk=msg[3],
                        )
                        failed = "simulator fault (exact semantics rerun)"
                        worker.task = None

            if failed is not None:
                break

            # Sentinel-confirmed deaths (crashes).
            reap_deaths()
            if failed is not None:
                break

            # Deadline enforcement: the watchdog half of the loop.
            now = time.monotonic()
            for worker in list(usable()):
                if worker.task is not None and now > worker.deadline:
                    task = worker.task
                    telemetry.deadline_kills += 1
                    telemetry.record(
                        "deadline-kill",
                        f"chunk {task.index} exceeded {chunk_timeout:.3g}s on "
                        f"worker {worker.wid}; SIGKILL",
                        worker=worker.pid,
                        chunk=task.index,
                    )
                    self._kill(worker)
                    replace_worker()
                    retry_or_fail(task)
                    if failed is not None:
                        break

        if failed is not None:
            # Abort: kill workers still chewing on chunks of this launch so
            # the pool is quiescent for whatever runs next; idle workers
            # survive untouched.
            for worker in list(usable()):
                if worker.task is not None:
                    telemetry.record(
                        "abort-kill",
                        f"worker {worker.wid} still busy at abort",
                        worker=worker.pid,
                        chunk=worker.task.index,
                    )
                    self._kill(worker)
            telemetry.degraded = "sequential"
            telemetry.record("degrade-sequential", failed)
            return None

        # Success: merge in ascending chunk order (sequential last-writer-
        # wins order for overlapping writes; integer stats merge exactly).
        stats = KernelStats()
        shared_bytes = 0
        executed = 0
        for index in range(len(chunks)):
            r = results[index]
            stats.merge(r["stats"])
            if profile is not None and r["profile"] is not None:
                profile.merge(r["profile"])
            executed += r["executed"]
            shared_bytes = r["shared_bytes"]
            for name, (idx, values) in r["writes"].items():
                gmem[name].data[idx] = values
        return ParallelOutcome(
            stats=stats,
            executed=executed,
            shared_bytes=shared_bytes,
            workers=want,
        )

    # -- independent task execution ------------------------------------------

    def run_tasks(
        self,
        runner: str,
        payloads: List[object],
        workers: int,
        config: ResilienceConfig,
        telemetry: ResilienceTelemetry,
        injector=None,
        kernel_name: str = "",
    ) -> Optional[List[Optional[object]]]:
        """Run independent pickled tasks across the pool.

        The independent-tasks twin of :meth:`run_launch`, sharing its
        deadlines, bounded retries, respawn budget, and telemetry — but
        with per-task failure semantics: a task whose retries are exhausted
        yields ``None`` at its index while every other task still completes
        (the sharded autotuner turns those into disqualified points).  Only
        infrastructure collapse (pipe/pickle trouble, no live workers) fails
        the whole call, returning ``None`` so the caller reruns everything
        sequentially.

        ``runner`` is a ``"module.path:function"`` string resolved inside
        the worker; the function receives one payload and returns a
        picklable result.  ``injector`` resolves ``worker_crash`` /
        ``worker_hang`` / ``worker_slow`` specs at dispatch, exactly like
        the chunk path — a spec's ``block`` filter selects the *task index*
        here.
        """
        with self._lock:
            try:
                return self._run_tasks_locked(
                    runner, payloads, workers, config, telemetry, injector,
                    kernel_name,
                )
            except (OSError, ValueError, TypeError, pickle.PicklingError) as exc:
                telemetry.record("pool-error", f"{type(exc).__name__}: {exc}")
                telemetry.degraded = "sequential"
                return None

    def _run_tasks_locked(self, runner, payloads, workers, config, telemetry,
                          injector, kernel_name) -> Optional[List[Optional[object]]]:
        self._seq += 1
        seq = self._seq
        want = max(min(workers, len(payloads)), 1)
        telemetry.pool_mode = "persistent"
        telemetry.workers = want
        telemetry.chunks = len(payloads)
        self.ensure_workers(want, config, telemetry)
        for worker in sorted(self.alive_workers(), key=lambda w: w.wid)[:want]:
            worker.launch_seq = seq
            worker.task = None

        pending = collections.deque(
            _Task(index=i, blocks=[i]) for i in range(len(payloads))
        )
        results: Dict[int, object] = {}
        done = 0
        respawns_left = (
            config.max_respawns if config.max_respawns is not None else want * 2
        )
        rng = random.Random(config.seed)
        chunk_timeout = config.effective_chunk_timeout
        failed: Optional[str] = None

        def usable() -> List[_Worker]:
            return [
                w for w in self._workers.values()
                if w.alive and w.launch_seq == seq
            ]

        def retry_or_drop(task: _Task) -> None:
            """Per-task failure: exhausted retries disqualify one task only."""
            nonlocal done
            if task.attempt >= config.max_retries:
                detail = (
                    f"task {task.index} failed {task.attempt + 1} times "
                    f"(max_retries={config.max_retries})"
                )
                telemetry.record("retries-exhausted", detail, chunk=task.index)
                results[task.index] = None
                done += 1
                return
            delay = jittered_backoff(
                task.attempt, rng, config.backoff_base, config.backoff_cap
            )
            telemetry.retries += 1
            telemetry.record(
                "retry",
                f"task {task.index} attempt {task.attempt + 1} "
                f"after {delay * 1e3:.0f}ms backoff",
                chunk=task.index,
            )
            time.sleep(delay)
            pending.appendleft(
                _Task(index=task.index, blocks=task.blocks, attempt=task.attempt + 1)
            )

        def replace_worker() -> None:
            nonlocal respawns_left
            if respawns_left > 0:
                respawns_left -= 1
                telemetry.respawns += 1
                replacement = self._spawn(config, telemetry)
                replacement.launch_seq = seq
            elif usable():
                if telemetry.degraded != "reduced":
                    telemetry.degraded = "reduced"
                    telemetry.record(
                        "degrade-reduced",
                        f"respawn budget exhausted; continuing on "
                        f"{len(usable())} worker(s)",
                    )

        def handle_death(worker: _Worker, reason: str) -> None:
            telemetry.worker_crashes += 1
            telemetry.record(
                "worker-crash",
                f"worker {worker.wid} {reason} (exitcode "
                f"{worker.proc.exitcode})",
                worker=worker.pid,
                chunk=worker.task.index if worker.task else None,
            )
            task = worker.task
            self._discard(worker)
            replace_worker()
            if task is not None:
                retry_or_drop(task)

        def reap_deaths() -> None:
            for worker in [
                w for w in list(self._workers.values())
                if w.launch_seq == seq and not w.alive
            ]:
                handle_death(worker, "died")

        while failed is None and done < len(payloads):
            reap_deaths()
            workers_now = usable()
            if not workers_now:
                if respawns_left > 0:
                    replace_worker()
                    continue
                failed = "no live workers remain"
                telemetry.record("no-workers", failed)
                break
            for worker in sorted(workers_now, key=lambda w: w.wid):
                if not pending:
                    break
                if worker.task is not None:
                    continue
                task = pending.popleft()
                directive = None
                if injector is not None:
                    directive = injector.poll_worker_fault(
                        kernel_name, task.index, task.blocks,
                        worker_pid=worker.pid,
                    )
                    if directive is not None:
                        telemetry.record(
                            "inject-" + directive[0],
                            f"task {task.index} on worker {worker.wid}",
                            worker=worker.pid,
                            chunk=task.index,
                        )
                deadline = time.monotonic() + chunk_timeout
                if directive is not None and directive[0] == "worker_slow":
                    deadline += directive[1]
                worker.task = task
                worker.deadline = deadline
                telemetry.attempts += 1
                worker.conn.send(
                    ("task", seq, task.index, runner, payloads[task.index],
                     directive)
                )

            busy = [w for w in usable() if w.task is not None]
            if not busy:
                continue  # dispatch again (e.g. after a drop or respawn)
            now = time.monotonic()
            timeout = max(min(w.deadline for w in busy) - now, 0.0)
            waitables = [w.conn for w in usable()] + [
                w.proc.sentinel for w in usable()
            ]
            connection.wait(waitables, timeout=min(timeout + 0.01, 1.0))

            for worker in list(usable()):
                while True:
                    try:
                        if not worker.conn.poll():
                            break
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        break  # death handled below via the sentinel
                    kind = msg[0]
                    if kind == "ready":
                        continue
                    if msg[1] != worker.wid or msg[2] != seq:
                        continue  # stale message from an aborted run
                    if kind == "start":
                        continue
                    if kind == "done":
                        _, _, _, index, payload = msg
                        if index not in results:
                            results[index] = payload
                            done += 1
                        worker.tasks_done += 1
                        worker.task = None

            reap_deaths()

            now = time.monotonic()
            for worker in list(usable()):
                if worker.task is not None and now > worker.deadline:
                    task = worker.task
                    telemetry.deadline_kills += 1
                    telemetry.record(
                        "deadline-kill",
                        f"task {task.index} exceeded {chunk_timeout:.3g}s on "
                        f"worker {worker.wid}; SIGKILL",
                        worker=worker.pid,
                        chunk=task.index,
                    )
                    self._kill(worker)
                    replace_worker()
                    retry_or_drop(task)

        if failed is not None:
            for worker in list(usable()):
                if worker.task is not None:
                    telemetry.record(
                        "abort-kill",
                        f"worker {worker.wid} still busy at abort",
                        worker=worker.pid,
                        chunk=worker.task.index,
                    )
                    self._kill(worker)
            telemetry.degraded = "sequential"
            telemetry.record("degrade-sequential", failed)
            return None

        return [results.get(i) for i in range(len(payloads))]


_POOL: Optional[WorkerPool] = None
_POOL_PID: Optional[int] = None


def get_pool() -> WorkerPool:
    """The process-wide persistent pool (created on first use).

    Re-created after a fork: a child process must not adopt its parent's
    worker pipes.
    """
    global _POOL, _POOL_PID
    if _POOL is None or _POOL_PID != os.getpid():
        _POOL = WorkerPool()
        _POOL_PID = os.getpid()
    return _POOL


def shutdown_pool() -> None:
    """Tear down the process-wide pool (tests; atexit)."""
    global _POOL
    if _POOL is not None and _POOL_PID == os.getpid():
        _POOL.shutdown()
    _POOL = None


def drain_pool(timeout: Optional[float] = None) -> bool:
    """Gracefully drain the process-wide pool (server shutdown path).

    True when there was no pool to drain or every worker exited cleanly
    within ``timeout``; see :meth:`WorkerPool.drain`.
    """
    global _POOL
    if _POOL is None or _POOL_PID != os.getpid():
        _POOL = None
        return True
    clean = _POOL.drain(timeout)
    _POOL = None
    return clean


atexit.register(shutdown_pool)
