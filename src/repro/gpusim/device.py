"""GPU device specifications.

The paper evaluates on an NVIDIA GTX 680 (Kepler GK104, sm_30) and uses a
Tesla K20c (GK110, sm_35) for the dynamic-parallelism microbenchmark.  These
specs drive the occupancy calculator, the Hong–Kim timing model, and the
dynamic-parallelism overhead model.

Only parameters the models consume are included; they are taken from the
CUDA C programming guide for compute capability 3.0/3.5 and from the paper's
measurements (e.g. the 142 GB/s baseline memcopy bandwidth on K20c).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a simulated GPU."""

    name: str
    sm_version: int                  # compute capability ×10 (30 = sm_30)
    num_smx: int                     # streaming multiprocessors
    warp_size: int = 32
    # Thread-block / SMX occupancy limits (CUDA CC 3.x values).
    max_threads_per_block: int = 1024
    max_threads_per_smx: int = 2048
    max_blocks_per_smx: int = 16
    max_warps_per_smx: int = 64
    registers_per_smx: int = 65536          # 32-bit registers
    max_registers_per_thread: int = 63      # sm_30 (sm_35 allows 255)
    register_alloc_granularity: int = 256   # warp-level allocation unit
    shared_per_smx: int = 48 * 1024         # bytes (48 KB config)
    max_shared_per_block: int = 48 * 1024
    shared_alloc_granularity: int = 256
    l1_size: int = 16 * 1024                # bytes (with 48 KB shared config)
    # Clock / memory system.
    core_clock_ghz: float = 1.006
    mem_bandwidth_gbs: float = 192.2        # peak DRAM bandwidth
    mem_latency_cycles: int = 400           # global memory round trip
    l1_latency_cycles: int = 30             # local-memory hit latency
    transaction_bytes: int = 128            # coalescing segment size
    departure_delay_cycles: int = 4         # per-transaction issue delay
    issue_cycles_per_inst: float = 1.0      # SP pipeline issue rate per warp
    #: Resident warps needed to saturate the issue pipelines on dependent
    #: code (≈ arithmetic latency × schedulers / ILP); below this, compute-
    #: bound kernels leave bubbles (Volkov-style ILP/TLP trade-off).
    issue_saturation_warps: int = 24
    # Dynamic parallelism cost model (meaningful for sm >= 35).
    supports_dynamic_parallelism: bool = False
    dynpar_launch_overhead_us: float = 1.5  # device-side per-launch gap
    dynpar_enabled_tax: float = 2.25        # 142 GB/s -> 63 GB/s (paper §2.1)

    @property
    def supports_shfl(self) -> bool:
        """``__shfl`` register exchange exists from Kepler (sm_30) onward."""
        return self.sm_version >= 30

    @property
    def peak_bytes_per_cycle(self) -> float:
        """DRAM bytes per core cycle across the whole chip."""
        return self.mem_bandwidth_gbs / self.core_clock_ghz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.core_clock_ghz * 1e9)

    def with_shared_config(self, shared_kb: int) -> "DeviceSpec":
        """Return a copy with the shared/L1 split reconfigured (16/32/48 KB)."""
        if shared_kb not in (16, 32, 48):
            raise ValueError("shared memory config must be 16, 32 or 48 KB")
        l1_kb = 64 - shared_kb - 16  # 64 KB array minus 16 KB texture slice
        return replace(
            self,
            shared_per_smx=shared_kb * 1024,
            l1_size=max(l1_kb, 16) * 1024 if shared_kb != 48 else 16 * 1024,
        )


#: GeForce GTX 680 — the paper's main evaluation platform (Kepler GK104).
GTX680 = DeviceSpec(
    name="GTX 680",
    sm_version=30,
    num_smx=8,
    core_clock_ghz=1.006,
    mem_bandwidth_gbs=192.2,
)

#: Tesla K20c — used for the dynamic-parallelism microbenchmark (Fig. 1).
K20C = DeviceSpec(
    name="Tesla K20c",
    sm_version=35,
    num_smx=13,
    max_registers_per_thread=255,
    core_clock_ghz=0.706,
    mem_bandwidth_gbs=208.0,
    supports_dynamic_parallelism=True,
)

#: A pre-Kepler device (no __shfl) for exercising the sm_version pragma path.
FERMI = DeviceSpec(
    name="Fermi-class (sm_20)",
    sm_version=20,
    num_smx=16,
    max_threads_per_smx=1536,
    max_blocks_per_smx=8,
    max_warps_per_smx=48,
    registers_per_smx=32768,
    core_clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
)
