"""Software GPU: functional SIMT interpreter + analytical timing.

The substrate that stands in for the paper's GTX 680 / K20c hardware:

- :mod:`~repro.gpusim.device` — device specifications
- :mod:`~repro.gpusim.memory` — global/shared/local/constant memories
- :mod:`~repro.gpusim.coalescing` — transaction + bank-conflict models
- :mod:`~repro.gpusim.cache` — functional L1 + analytical capacity model
- :mod:`~repro.gpusim.interp` — warp-level interpreter (divergence masks)
- :mod:`~repro.gpusim.compile` — closure-compiled execution engine + cache
- :mod:`~repro.gpusim.diskcache` — persistent content-addressed cache tier
- :mod:`~repro.gpusim.scheduler` — parallel block scheduler
- :mod:`~repro.gpusim.pool` — supervised persistent worker pool
- :mod:`~repro.gpusim.resilience` — deadlines, retries, circuit breaker
- :mod:`~repro.gpusim.stream` — async launches with stream ordering
- :mod:`~repro.gpusim.occupancy` — CUDA occupancy calculator
- :mod:`~repro.gpusim.timing` — Hong–Kim MWP/CWP kernel-time model
- :mod:`~repro.gpusim.launch` — host-side launch API
- :mod:`~repro.gpusim.dynpar` — dynamic-parallelism overhead model
- :mod:`~repro.gpusim.report` — nvprof-style kernel profiles
- :mod:`~repro.gpusim.diagnostics` — located faults, sanitizer reports
- :mod:`~repro.gpusim.faults` — deterministic fault injection
- :mod:`~repro.gpusim.racecheck` — racecheck/initcheck sanitizer tools
"""

from .compile import (
    CompiledKernel,
    CompileCacheStats,
    clear_compile_cache,
    compile_cache_stats,
    compile_kernel,
    kernel_digest,
)
from .device import FERMI, GTX680, K20C, DeviceSpec
from .diskcache import DiskCache, DiskCacheStats, disk_cache_stats, get_disk_cache
from .diagnostics import FaultContext, FaultReport, render_report
from .errors import (
    DivergenceError,
    DynParError,
    InjectedFault,
    IntrinsicError,
    LaunchError,
    MemoryFault,
    SimError,
    SyncError,
)
from .faults import FaultInjector, FaultSpec, InjectionRecord
from .launch import LaunchResult, launch, run_kernel
from .pool import shutdown_pool
from .racecheck import Sanitizer, SanitizerFinding, SanitizerReport
from .resilience import (
    CircuitBreaker,
    PoolEvent,
    ResilienceConfig,
    ResilienceTelemetry,
    get_breaker,
    reset_breaker,
)
from .stream import Event, LaunchFuture, Stream, default_stream, launch_async
from .report import compare_report, profile_report
from .occupancy import Occupancy, ResourceUsage, compute_occupancy
from .stats import KernelStats, PerWarpStats
from .timing import TimingResult, estimate_kernel_time

__all__ = [name for name in dir() if not name.startswith("_")]
