"""Token definitions for the mini-CUDA lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .errors import SourceLoc


class TokKind(Enum):
    """Kinds of lexical tokens in the mini-CUDA language."""

    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    PUNCT = auto()     # operators and punctuation
    KEYWORD = auto()
    PRAGMA = auto()    # a whole '#pragma ...' line, raw text in ``text``
    EOF = auto()


# C keywords plus the CUDA qualifiers we understand.  ``__global__`` marks a
# kernel entry point, ``__device__`` a helper function, ``__shared__`` a
# per-thread-block array.
KEYWORDS = frozenset(
    {
        "void",
        "int",
        "unsigned",
        "float",
        "bool",
        "char",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "const",
        "__global__",
        "__device__",
        "__shared__",
        "__constant__",
        "__restrict__",
        "struct",
        "true",
        "false",
    }
)

# Multi-character punctuation, longest first so maximal munch works.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokKind
    text: str
    loc: SourceLoc

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.name}({self.text!r})@{self.loc}"
