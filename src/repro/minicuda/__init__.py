"""Mini-CUDA front end: a CUDA-C subset with ``#pragma np`` directives.

This package provides the source language for the CUDA-NP reproduction:

- :mod:`~repro.minicuda.lexer` / :mod:`~repro.minicuda.parser` — text → AST
- :mod:`~repro.minicuda.nodes` — the AST, plus traversal helpers
- :mod:`~repro.minicuda.build` — concise AST constructors for passes
- :mod:`~repro.minicuda.pragma` — ``#pragma np parallel for`` parsing
- :mod:`~repro.minicuda.check` — static semantic validation
- :mod:`~repro.minicuda.pretty` — AST → source (the transformed-kernel view)
"""

from .check import Diagnostic, assert_valid, check_kernel
from .errors import (
    LexError,
    MiniCudaError,
    ParseError,
    PragmaError,
    SourceLoc,
    TransformError,
    TypeError_,
)
from .lexer import tokenize
from .nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Kernel,
    Member,
    Name,
    Node,
    NpPragma,
    Param,
    PointerType,
    Program,
    Return,
    ScalarType,
    Stmt,
    Ternary,
    Type,
    Unary,
    VarDecl,
    While,
    BOOL,
    FLOAT,
    INT,
    UINT,
    VOID,
    children,
    clone,
    map_expr,
    names_used,
    substitute,
    walk,
)
from .parser import const_eval, parse, parse_kernel
from .pragma import parse_np_pragma
from .pretty import emit_expr, emit_kernel, emit_program

__all__ = [name for name in dir() if not name.startswith("_")]
