"""Concise AST constructors.

Compiler transformations build a lot of synthetic code (guards, broadcasts,
reduction trees).  These helpers keep those passes readable:

    assign(name("sum"), add(name("sum"), ix(name("a"), name("i"))))
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .nodes import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Member,
    Name,
    NpPragma,
    ScalarType,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
)

ExprLike = Union[Expr, int, float, str]


def e(value: ExprLike) -> Expr:
    """Coerce a Python value into an Expr.

    ints/floats become literals; strings become :class:`Name` references
    (dotted strings like ``"threadIdx.x"`` become Member chains).
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return IntLit(int(value))
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    if isinstance(value, str):
        if "." in value:
            base, _, member = value.rpartition(".")
            return Member(e(base), member)
        return Name(value)
    raise TypeError(f"cannot coerce {value!r} to Expr")


def name(id_: str) -> Name:
    return Name(id_)


def lit(v: Union[int, float]) -> Expr:
    return e(v)


def member(base: ExprLike, field_: str) -> Member:
    return Member(e(base), field_)


def ix(base: ExprLike, *indices: ExprLike) -> Expr:
    """Build (possibly multi-dimensional) index chain base[i][j]..."""
    out: Expr = e(base)
    for index in indices:
        out = Index(out, e(index))
    return out


def call(func: str, *args: ExprLike) -> Call:
    return Call(func, [e(a) for a in args])


def binop(op: str, lhs: ExprLike, rhs: ExprLike) -> Binary:
    return Binary(op, e(lhs), e(rhs))


def add(a: ExprLike, b: ExprLike) -> Binary:
    return binop("+", a, b)


def sub(a: ExprLike, b: ExprLike) -> Binary:
    return binop("-", a, b)


def mul(a: ExprLike, b: ExprLike) -> Binary:
    return binop("*", a, b)


def div(a: ExprLike, b: ExprLike) -> Binary:
    return binop("/", a, b)


def mod(a: ExprLike, b: ExprLike) -> Binary:
    return binop("%", a, b)


def lt(a: ExprLike, b: ExprLike) -> Binary:
    return binop("<", a, b)


def le(a: ExprLike, b: ExprLike) -> Binary:
    return binop("<=", a, b)


def gt(a: ExprLike, b: ExprLike) -> Binary:
    return binop(">", a, b)


def ge(a: ExprLike, b: ExprLike) -> Binary:
    return binop(">=", a, b)


def eq(a: ExprLike, b: ExprLike) -> Binary:
    return binop("==", a, b)


def ne(a: ExprLike, b: ExprLike) -> Binary:
    return binop("!=", a, b)


def land(a: ExprLike, b: ExprLike) -> Binary:
    return binop("&&", a, b)


def lor(a: ExprLike, b: ExprLike) -> Binary:
    return binop("||", a, b)


def neg(a: ExprLike) -> Unary:
    return Unary("-", e(a))


def lnot(a: ExprLike) -> Unary:
    return Unary("!", e(a))


def ternary(c: ExprLike, t: ExprLike, f: ExprLike) -> Ternary:
    return Ternary(e(c), e(t), e(f))


def cast(type_name: str, expr: ExprLike) -> Cast:
    return Cast(ScalarType(type_name), e(expr))


def assign(target: ExprLike, value: ExprLike, op: str = "=") -> Assign:
    return Assign(e(target), op, e(value))


def decl(
    name_: str,
    type_,
    init: Optional[ExprLike] = None,
    const: bool = False,
) -> VarDecl:
    return VarDecl(name_, type_, None if init is None else e(init), const=const)


def block(*stmts: Union[Stmt, Sequence[Stmt]]) -> Block:
    flat: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Stmt):
            flat.append(s)
        else:
            flat.extend(s)
    return Block(flat)


def if_(cond: ExprLike, then: Union[Block, Sequence[Stmt], Stmt], els=None) -> If:
    def as_block(x) -> Block:
        if isinstance(x, Block):
            return x
        if isinstance(x, Stmt):
            return Block([x])
        return Block(list(x))

    return If(e(cond), as_block(then), None if els is None else as_block(els))


def for_range(
    var: str,
    start: ExprLike,
    stop: ExprLike,
    body: Union[Block, Sequence[Stmt]],
    step: ExprLike = 1,
    pragma: Optional[NpPragma] = None,
) -> For:
    """``for (int var = start; var < stop; var += step) body``."""
    from .nodes import INT

    if not isinstance(body, Block):
        body = Block(list(body))
    return For(
        init=VarDecl(var, INT, e(start)),
        cond=binop("<", name(var), e(stop)),
        update=Assign(name(var), "+=", e(step)),
        body=body,
        pragma=pragma,
    )


def expr_stmt(expr: ExprLike) -> ExprStmt:
    return ExprStmt(e(expr))


def sync() -> ExprStmt:
    return ExprStmt(call("__syncthreads"))
