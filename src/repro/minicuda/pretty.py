"""Pretty-printer: emits mini-CUDA AST back as source text.

This is the "output kernel" half of the source-to-source story (the paper's
Fig. 3b): after the CUDA-NP transformation the user can inspect the generated
kernel as readable CUDA-like code.  The printer is also used for parser
round-trip testing (parse → print → parse yields an equivalent tree).
"""

from __future__ import annotations

from .nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    BoolLit,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Kernel,
    Member,
    Name,
    NpPragma,
    PointerType,
    Program,
    Return,
    ScalarType,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
)

_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_PREC = 11
_POSTFIX_PREC = 12


def emit_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where precedence requires."""
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, IntLit):
        return str(expr.value), _POSTFIX_PREC
    if isinstance(expr, FloatLit):
        value = expr.value
        text = repr(float(value))
        if text.endswith(".0"):
            text = text[:-1]  # 3.0 -> '3.'
        return f"{text}f", _POSTFIX_PREC
    if isinstance(expr, BoolLit):
        return ("true" if expr.value else "false"), _POSTFIX_PREC
    if isinstance(expr, Name):
        return expr.id, _POSTFIX_PREC
    if isinstance(expr, Member):
        return f"{emit_expr(expr.base, _POSTFIX_PREC)}.{expr.name}", _POSTFIX_PREC
    if isinstance(expr, Index):
        return (
            f"{emit_expr(expr.base, _POSTFIX_PREC)}[{emit_expr(expr.index)}]",
            _POSTFIX_PREC,
        )
    if isinstance(expr, Call):
        args = ", ".join(emit_expr(a) for a in expr.args)
        return f"{expr.func}({args})", _POSTFIX_PREC
    if isinstance(expr, Unary):
        inner = emit_expr(expr.operand, _UNARY_PREC)
        return f"{expr.op}{inner}", _UNARY_PREC
    if isinstance(expr, Cast):
        inner = emit_expr(expr.expr, _UNARY_PREC)
        return f"({expr.type}){inner}", _UNARY_PREC
    if isinstance(expr, Binary):
        prec = _PREC[expr.op]
        lhs = emit_expr(expr.lhs, prec)
        rhs = emit_expr(expr.rhs, prec + 1)  # left-assoc
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, Ternary):
        cond = emit_expr(expr.cond, 1)
        return f"{cond} ? {emit_expr(expr.then)} : {emit_expr(expr.els)}", 0
    raise TypeError(f"cannot emit expression {expr!r}")


def _emit_pragma(pragma: NpPragma) -> str:
    parts = ["#pragma np parallel for"]
    for op, var in pragma.reductions:
        parts.append(f"reduction({op}:{var})")
    for op, var in pragma.scans:
        parts.append(f"scan({op}:{var})")
    if pragma.copyins:
        parts.append(f"copyin({', '.join(pragma.copyins)})")
    if pragma.num_threads is not None:
        parts.append(f"num_threads({pragma.num_threads})")
    if pragma.np_type is not None:
        parts.append(f"np_type({pragma.np_type})")
    if pragma.sm_version is not None:
        parts.append(f"sm_version({pragma.sm_version})")
    return " ".join(parts)


def _emit_decl_inline(decl: VarDecl) -> str:
    type_ = decl.type
    const = "const " if decl.const else ""
    if isinstance(type_, ScalarType):
        head = f"{const}{type_} {decl.name}"
    elif isinstance(type_, PointerType):
        head = f"{const}{type_.elem} *{decl.name}"
    elif isinstance(type_, ArrayType):
        qual = {
            "shared": "__shared__ ",
            "constant": "__constant__ ",
            "local": "",
            "reg": "",
        }[type_.space]
        dims = "".join(f"[{d}]" for d in type_.dims)
        head = f"{qual}{const}{type_.elem} {decl.name}{dims}"
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot emit declaration of type {type_!r}")
    if decl.init is not None:
        head += f" = {emit_expr(decl.init)}"
    return head


def _emit_for_clause(stmt) -> str:
    if stmt is None:
        return ""
    if isinstance(stmt, VarDecl):
        return _emit_decl_inline(stmt)
    if isinstance(stmt, Assign):
        return f"{emit_expr(stmt.target)} {stmt.op} {emit_expr(stmt.value)}"
    if isinstance(stmt, ExprStmt):
        return emit_expr(stmt.expr)
    raise TypeError(f"bad for clause {stmt!r}")


class _Printer:
    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._lines: list[str] = []
        self._level = 0

    def line(self, text: str) -> None:
        self._lines.append(f"{self._indent * self._level}{text}")

    def stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            self.line(f"{_emit_decl_inline(stmt)};")
        elif isinstance(stmt, Assign):
            self.line(f"{emit_expr(stmt.target)} {stmt.op} {emit_expr(stmt.value)};")
        elif isinstance(stmt, ExprStmt):
            self.line(f"{emit_expr(stmt.expr)};")
        elif isinstance(stmt, Return):
            self.line("return;" if stmt.value is None else f"return {emit_expr(stmt.value)};")
        elif isinstance(stmt, Break):
            self.line("break;")
        elif isinstance(stmt, Continue):
            self.line("continue;")
        elif isinstance(stmt, Block):
            self.block(stmt)
        elif isinstance(stmt, If):
            self.line(f"if ({emit_expr(stmt.cond)}) {{")
            self._nested(stmt.then)
            if stmt.els is not None:
                self.line("} else {")
                self._nested(stmt.els)
            self.line("}")
        elif isinstance(stmt, For):
            if stmt.pragma is not None:
                self.line(_emit_pragma(stmt.pragma))
            init = _emit_for_clause(stmt.init)
            cond = "" if stmt.cond is None else emit_expr(stmt.cond)
            update = _emit_for_clause(stmt.update)
            self.line(f"for ({init}; {cond}; {update}) {{")
            self._nested(stmt.body)
            self.line("}")
        elif isinstance(stmt, While):
            self.line(f"while ({emit_expr(stmt.cond)}) {{")
            self._nested(stmt.body)
            self.line("}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot emit statement {stmt!r}")

    def _nested(self, body: Block) -> None:
        self._level += 1
        for s in body.stmts:
            self.stmt(s)
        self._level -= 1

    def block(self, body: Block) -> None:
        self.line("{")
        self._nested(body)
        self.line("}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def emit_kernel(kernel: Kernel) -> str:
    """Render a kernel definition as mini-CUDA source."""
    printer = _Printer()
    params = ", ".join(
        f"{p.type.elem} *{p.name}" if isinstance(p.type, PointerType) else f"{p.type} {p.name}"
        for p in kernel.params
    )
    for cname, cvalue in kernel.const_env.items():
        printer.line(f"#define {cname} {cvalue}")
    printer.line(f"__global__ void {kernel.name}({params}) {{")
    printer._nested(kernel.body)
    printer.line("}")
    return printer.text()


def emit_program(program: Program) -> str:
    """Render all kernels of a program."""
    return "\n".join(emit_kernel(k) for k in program.kernels.values())
