"""Hand-written lexer for the mini-CUDA language.

The lexer understands C-style comments, ``#define NAME value`` object-like
macros (expanded textually, the way the paper's benchmarks use
``#define BLOCK_SIZE 16`` / ``#define NPOINTS 150``), and keeps
``#pragma ...`` lines as single PRAGMA tokens so the parser can attach them
to the following loop.
"""

from __future__ import annotations

import re

from .errors import LexError, SourceLoc
from .tokens import KEYWORDS, PUNCTUATORS, TokKind, Token

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Floats require a '.' or exponent or trailing f; plain integers handled apart.
_FLOAT_RE = re.compile(r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fF]?")
_INT_RE = re.compile(r"(?:0[xX][0-9a-fA-F]+|\d+)[uU]?")
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)\s+(.*?)\s*$")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(.*?)\s*$")


def _strip_comments(src: str) -> str:
    """Remove // and /* */ comments while preserving newlines for locations."""
    out: list[str] = []
    i, n = 0, len(src)
    while i < n:
        ch = src[i]
        if ch == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            i = n if j < 0 else j
        elif ch == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            if j < 0:
                raise LexError("unterminated block comment")
            out.append("\n" * src.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Lexer:
    """Tokenizes mini-CUDA source into a list of :class:`Token`."""

    def __init__(self, source: str):
        self._source = _strip_comments(source)
        self._defines: dict[str, str] = {}

    @property
    def defines(self) -> dict[str, str]:
        """Object-like macros collected while lexing (name -> replacement)."""
        return dict(self._defines)

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        for lineno, raw_line in enumerate(self._source.split("\n"), start=1):
            line = raw_line
            m = _DEFINE_RE.match(line)
            if m:
                self._defines[m.group(1)] = m.group(2)
                continue
            m = _PRAGMA_RE.match(line)
            if m:
                tokens.append(
                    Token(TokKind.PRAGMA, m.group(1), SourceLoc(lineno, 1))
                )
                continue
            tokens.extend(self._lex_line(line, lineno))
        tokens.append(Token(TokKind.EOF, "", SourceLoc(0, 0)))
        return tokens

    def _lex_line(self, line: str, lineno: int) -> list[Token]:
        tokens: list[Token] = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            if ch in " \t\r":
                i += 1
                continue
            loc = SourceLoc(lineno, i + 1)
            if ch.isalpha() or ch == "_":
                m = _IDENT_RE.match(line, i)
                assert m is not None
                word = m.group(0)
                i = m.end()
                if word in self._defines:
                    # Textual macro expansion: re-lex the replacement.
                    tokens.extend(self._lex_line(self._defines[word], lineno))
                elif word in KEYWORDS:
                    tokens.append(Token(TokKind.KEYWORD, word, loc))
                else:
                    tokens.append(Token(TokKind.IDENT, word, loc))
                continue
            if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
                fm = _FLOAT_RE.match(line, i)
                im = _INT_RE.match(line, i)
                # Prefer float if its lexeme is longer (contains '.', 'e', 'f').
                if fm and (not im or len(fm.group(0)) > len(im.group(0))):
                    tokens.append(Token(TokKind.FLOAT, fm.group(0), loc))
                    i = fm.end()
                else:
                    assert im is not None
                    tokens.append(Token(TokKind.INT, im.group(0), loc))
                    i = im.end()
                continue
            for punct in PUNCTUATORS:
                if line.startswith(punct, i):
                    tokens.append(Token(TokKind.PUNCT, punct, loc))
                    i += len(punct)
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", loc)
        return tokens


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into tokens."""
    return Lexer(source).tokenize()
