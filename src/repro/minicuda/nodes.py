"""AST node definitions for the mini-CUDA language.

All nodes are plain dataclasses.  Transform passes produce *new* trees via
:func:`clone` plus targeted rewrites; nothing in the compiler mutates a tree
it does not own.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Iterator, Optional, Union

from .errors import SourceLoc

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: Scalar type names understood by the language.
SCALAR_TYPES = ("void", "int", "uint", "float", "bool")


@dataclass(frozen=True)
class ScalarType:
    """A scalar value type: ``int``, ``uint``, ``float``, ``bool``, ``void``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SCALAR_TYPES:
            raise ValueError(f"unknown scalar type {self.name!r}")

    def __str__(self) -> str:
        return {"uint": "unsigned int"}.get(self.name, self.name)


INT = ScalarType("int")
UINT = ScalarType("uint")
FLOAT = ScalarType("float")
BOOL = ScalarType("bool")
VOID = ScalarType("void")


@dataclass(frozen=True)
class PointerType:
    """A pointer to global memory (kernel parameters) or to a local slice."""

    elem: ScalarType

    def __str__(self) -> str:
        return f"{self.elem}*"


@dataclass(frozen=True)
class ArrayType:
    """A statically sized array in a specific memory space.

    ``space`` is one of ``"local"`` (per-thread, i.e. CUDA local memory when
    it does not fit the register file), ``"shared"`` (per thread block),
    ``"constant"``, or ``"reg"`` — a small per-thread array the backend
    promotes into the register file (produced by the CUDA-NP local-array
    partitioning, which the paper instantiates via ``template<int
    slave_size>`` so indices become compile-time constants).
    """

    elem: ScalarType
    dims: tuple[int, ...]
    space: str = "local"

    def __post_init__(self) -> None:
        if self.space not in ("local", "shared", "constant", "reg"):
            raise ValueError(f"bad array space {self.space!r}")
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError(f"bad array dims {self.dims!r}")

    @property
    def numel(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        prefix = {
            "shared": "__shared__ ",
            "constant": "__constant__ ",
            "local": "",
            "reg": "",
        }[self.space]
        return f"{prefix}{self.elem}{dims}"


Type = Union[ScalarType, PointerType, ArrayType]

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Common base so passes can test ``isinstance(x, Node)``."""

    loc: SourceLoc = field(default_factory=SourceLoc, kw_only=True, compare=False)


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    """A reference to a variable, parameter, or named constant."""

    id: str


@dataclass
class Member(Expr):
    """``base.name`` — in practice only builtin dim3 members (threadIdx.x)."""

    base: Expr
    name: str


@dataclass
class Index(Expr):
    """``base[index]``; multi-dimensional access is a chain of Index nodes."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """A builtin/device function call, e.g. ``sqrtf(x)`` or ``__shfl(...)``."""

    func: str
    args: list[Expr]


@dataclass
class Unary(Expr):
    op: str  # '-', '+', '!', '~'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, logical, bitwise, shifts
    lhs: Expr
    rhs: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    els: Expr


@dataclass
class Cast(Expr):
    type: ScalarType
    expr: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    """A single variable declaration, possibly with an initializer.

    Scalars live in the (virtual) register file; arrays carry their memory
    space in their :class:`ArrayType`.  Pointer declarations are used by
    generated code to alias a kernel parameter plus offset.
    """

    name: str
    type: Type
    init: Optional[Expr] = None
    const: bool = False


@dataclass
class Assign(Stmt):
    """``target op value`` where op is '=', '+=', '-=', '*=', '/='."""

    target: Expr  # Name or Index chain
    op: str
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Block = field(default_factory=Block)
    els: Optional[Block] = None


@dataclass
class NpPragma(Node):
    """A parsed ``#pragma np parallel for`` directive (see paper §3.6)."""

    parallel_for: bool = True
    reductions: list[tuple[str, str]] = field(default_factory=list)  # (op, var)
    scans: list[tuple[str, str]] = field(default_factory=list)
    copyins: list[str] = field(default_factory=list)
    num_threads: Optional[int] = None
    np_type: Optional[str] = None  # 'inter' | 'intra'
    sm_version: Optional[int] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # VarDecl or Assign
    cond: Optional[Expr]
    update: Optional[Stmt]  # Assign
    body: Block = field(default_factory=Block)
    pragma: Optional[NpPragma] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block = field(default_factory=Block)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    type: Type


@dataclass
class Kernel(Node):
    """A ``__global__`` function."""

    name: str
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    #: Compile-time constants visible inside the kernel (e.g. slave_size for
    #: generated variants — the paper emits ``template<int slave_size>``; we
    #: bind the instantiated value here instead).
    const_env: dict[str, int] = field(default_factory=dict)
    #: For compiler-generated kernels: which source kernel and transform
    #: produced this one (surfaced by fault diagnostics so a crash in
    #: generated code points back at its origin).  None for hand-written
    #: kernels.
    provenance: Optional[str] = None

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]


@dataclass
class Program(Node):
    kernels: dict[str, Kernel] = field(default_factory=dict)
    defines: dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def clone(node):
    """Deep-copy an AST node (or list of nodes)."""
    return copy.deepcopy(node)


def children(node: Node) -> Iterator[Node]:
    """Yield direct child nodes of ``node`` in source order."""
    for f in fields(node):
        if f.name == "loc":
            continue
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)


def names_used(node: Node) -> set[str]:
    """All :class:`Name` identifiers appearing anywhere below ``node``."""
    return {n.id for n in walk(node) if isinstance(n, Name)}


def map_expr(node, fn):
    """Return a copy of ``node`` with every :class:`Expr` descendant replaced
    by ``fn(expr)`` (applied bottom-up).  ``fn`` must return an Expr.
    """
    if not is_dataclass(node) or not isinstance(node, Node):
        return node
    new = copy.copy(node)
    for f in fields(node):
        if f.name == "loc":
            continue
        value = getattr(node, f.name)
        if isinstance(value, Node):
            setattr(new, f.name, map_expr(value, fn))
        elif isinstance(value, list):
            setattr(
                new,
                f.name,
                [map_expr(v, fn) if isinstance(v, Node) else v for v in value],
            )
    if isinstance(new, Expr):
        new = fn(new)
    return new


def substitute(node, mapping: dict[str, Expr]):
    """Replace free ``Name`` occurrences per ``mapping`` (returns a copy)."""

    def repl(e: Expr) -> Expr:
        if isinstance(e, Name) and e.id in mapping:
            return clone(mapping[e.id])
        return e

    return map_expr(node, repl)
