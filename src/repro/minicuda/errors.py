"""Diagnostics for the mini-CUDA front end.

Every error carries a source location so that compiler passes and the
simulator can point back at the offending kernel line, mirroring how a real
source-to-source tool (the paper used Cetus) reports problems.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLoc:
    """A (line, column) position inside a kernel source string."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.col}"


class MiniCudaError(Exception):
    """Base class for all front-end and compiler diagnostics."""

    def __init__(self, message: str, loc: SourceLoc | None = None):
        self.loc = loc
        if loc is not None and (loc.line or loc.col):
            message = f"[{loc}] {message}"
        super().__init__(message)


class LexError(MiniCudaError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""


class ParseError(MiniCudaError):
    """Raised when the parser meets an unexpected token."""


class PragmaError(MiniCudaError):
    """Raised for malformed ``#pragma np`` directives."""


class TypeError_(MiniCudaError):
    """Raised by semantic analysis for type mismatches.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class TransformError(MiniCudaError):
    """Raised when a CUDA-NP transformation cannot be applied legally."""
