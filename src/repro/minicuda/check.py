"""Static semantic checks for mini-CUDA kernels.

A real source-to-source compiler diagnoses broken input before transforming
it; this pass catches what the interpreter would otherwise only hit at
runtime:

- uses of undeclared variables;
- writes to kernel parameters' scalar values or to constant arrays;
- indexing a scalar / calling an unknown device function;
- wrong index arity for shared arrays, pointers and local arrays;
- ``__syncthreads`` used as a value;
- ``break``/``continue`` outside loops;
- pragma clause variables that do not exist or are not private scalars.

``check_kernel`` returns diagnostics; ``assert_valid`` raises on the first
error.  The CUDA-NP pipeline runs it before transforming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import SourceLoc, TypeError_
from .nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    Kernel,
    Member,
    Name,
    PointerType,
    Return,
    ScalarType,
    Stmt,
    Ternary,
    Unary,
    VarDecl,
    While,
)

#: Builtin dim3 names and the functions the simulator implements.
_BUILTIN_DIMS = {"threadIdx", "blockIdx", "blockDim", "gridDim"}
_KNOWN_CALLS = {
    "__syncthreads", "__shfl", "__shfl_up", "__shfl_down",
    "atomicAdd", "tex1Dfetch",
    "sqrtf", "sqrt", "rsqrtf", "expf", "__expf", "logf", "sinf", "cosf",
    "fabsf", "fabs", "floorf", "ceilf", "powf", "fminf", "fmaxf", "fmodf",
    "min", "max", "abs",
}


@dataclass(frozen=True)
class Diagnostic:
    """One semantic problem found in a kernel."""

    message: str
    loc: SourceLoc
    severity: str = "error"  # 'error' | 'warning'

    def __str__(self) -> str:
        return f"[{self.loc}] {self.severity}: {self.message}"


class _Checker:
    def __init__(self, kernel: Kernel, extra_names: set[str]):
        self.kernel = kernel
        self.diags: list[Diagnostic] = []
        self.scope: dict[str, object] = {}
        for p in kernel.params:
            self.scope[p.name] = p.type
        for cname in kernel.const_env:
            self.scope[cname] = ScalarType("int")
        for name in extra_names:
            self.scope.setdefault(name, "external")
        self.loop_depth = 0

    def error(self, message: str, node) -> None:
        self.diags.append(Diagnostic(message, getattr(node, "loc", SourceLoc())))

    def warn(self, message: str, node) -> None:
        self.diags.append(
            Diagnostic(message, getattr(node, "loc", SourceLoc()), "warning")
        )

    # -- statements ----------------------------------------------------------

    def check_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                self.check_expr(stmt.init)
            self.scope[stmt.name] = stmt.type
        elif isinstance(stmt, Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self.check_expr(stmt.expr, as_statement=True)
        elif isinstance(stmt, Block):
            self.check_block(stmt)
        elif isinstance(stmt, If):
            self.check_expr(stmt.cond)
            self.check_block(stmt.then)
            if stmt.els is not None:
                self.check_block(stmt.els)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_expr(stmt.cond)
            self.loop_depth += 1
            if stmt.update is not None:
                self.check_stmt(stmt.update)
            self.check_block(stmt.body)
            self.loop_depth -= 1
            if stmt.pragma is not None:
                self.check_pragma(stmt)
        elif isinstance(stmt, While):
            self.check_expr(stmt.cond)
            self.loop_depth += 1
            self.check_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, (Break, Continue)):
            if self.loop_depth == 0:
                word = "break" if isinstance(stmt, Break) else "continue"
                self.error(f"'{word}' outside of a loop", stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)

    def check_assign(self, stmt: Assign) -> None:
        self.check_expr(stmt.value)
        target = stmt.target
        if isinstance(target, Name):
            declared = self.scope.get(target.id)
            if declared is None:
                self.error(f"assignment to undeclared variable {target.id!r}", target)
            elif isinstance(declared, ArrayType):
                self.error(
                    f"cannot assign to array {target.id!r} as a whole", target
                )
        elif isinstance(target, Index):
            root = self.check_index(target)
            if isinstance(root, ArrayType) and root.space == "constant":
                self.error("constant arrays are read-only", target)
        else:
            self.error("invalid assignment target", target)

    def check_pragma(self, loop: For) -> None:
        assert loop.pragma is not None
        for op, var in loop.pragma.reductions + loop.pragma.scans:
            declared = self.scope.get(var)
            if declared is None:
                self.error(
                    f"pragma names unknown variable {var!r}", loop
                )
            elif not isinstance(declared, ScalarType):
                self.error(
                    f"pragma reduction/scan variable {var!r} must be a "
                    "private scalar", loop
                )

    # -- expressions -----------------------------------------------------------

    def check_expr(self, expr: Expr, as_statement: bool = False):
        """Returns the declared type when resolvable (for index checking)."""
        if isinstance(expr, Name):
            declared = self.scope.get(expr.id)
            if declared is None and expr.id not in _BUILTIN_DIMS:
                self.error(f"use of undeclared variable {expr.id!r}", expr)
            return declared
        if isinstance(expr, Member):
            if not (isinstance(expr.base, Name) and expr.base.id in _BUILTIN_DIMS):
                self.error("member access is only defined on builtin dim3", expr)
            elif expr.name not in ("x", "y", "z"):
                self.error(f"dim3 has no member {expr.name!r}", expr)
            return ScalarType("int")
        if isinstance(expr, Index):
            return self.check_index(expr)
        if isinstance(expr, Call):
            return self.check_call(expr, as_statement)
        if isinstance(expr, Unary):
            self.check_expr(expr.operand)
            return None
        if isinstance(expr, Cast):
            self.check_expr(expr.expr)
            return expr.type
        if isinstance(expr, Binary):
            self.check_expr(expr.lhs)
            self.check_expr(expr.rhs)
            return None
        if isinstance(expr, Ternary):
            self.check_expr(expr.cond)
            self.check_expr(expr.then)
            self.check_expr(expr.els)
            return None
        return None  # literals

    def check_index(self, expr: Index):
        indices: list[Expr] = []
        node: Expr = expr
        while isinstance(node, Index):
            indices.append(node.index)
            node = node.base
        for idx in indices:
            self.check_expr(idx)
        if isinstance(node, Name) and node.id not in self.scope:
            # Unknown index roots may be launch-bound constant buffers or
            # texture references; flag them softly instead of failing.
            self.warn(
                f"{node.id!r} is not declared; assuming a launch-bound buffer",
                node,
            )
            return None
        root_type = self.check_expr(node)
        if root_type == "external":
            return None  # bound at launch (texture / const buffer)
        if isinstance(root_type, ScalarType):
            self.error("cannot index a scalar value", expr)
            return None
        if isinstance(root_type, PointerType) and len(indices) != 1:
            self.error("pointers take exactly one index", expr)
        if isinstance(root_type, ArrayType) and len(indices) != len(root_type.dims):
            self.error(
                f"array expects {len(root_type.dims)} indices, got {len(indices)}",
                expr,
            )
        return root_type

    def check_call(self, expr: Call, as_statement: bool):
        if expr.func == "__syncthreads":
            if not as_statement:
                self.error("__syncthreads() cannot be used as a value", expr)
            if expr.args:
                self.error("__syncthreads() takes no arguments", expr)
            return None
        if expr.func not in _KNOWN_CALLS:
            self.error(f"unknown device function {expr.func!r}", expr)
        if expr.func == "tex1Dfetch":
            # First argument is a texture *reference* bound at launch time;
            # only the index expression is checked.
            if len(expr.args) == 2:
                self.check_expr(expr.args[1])
            else:
                self.error("tex1Dfetch expects (texture, index)", expr)
            return None
        for arg in expr.args:
            self.check_expr(arg)
        return None


def check_kernel(kernel: Kernel, extra_names: set[str] = frozenset()) -> list[Diagnostic]:
    """Semantic-check a kernel; returns all diagnostics found.

    ``extra_names`` declares launch-bound objects (textures, constant
    buffers) that are not kernel parameters.
    """
    checker = _Checker(kernel, set(extra_names))
    checker.check_block(kernel.body)
    return checker.diags


def assert_valid(kernel: Kernel, extra_names: set[str] = frozenset()) -> None:
    """Raise :class:`TypeError_` on the first semantic *error* (warnings —
    e.g. launch-bound buffers the checker cannot see — pass)."""
    errors = [d for d in check_kernel(kernel, extra_names) if d.severity == "error"]
    if errors:
        raise TypeError_(str(errors[0]), errors[0].loc)
