"""Parser for ``#pragma np`` directives (paper §3.6).

Grammar (all clauses optional, any order after ``parallel for``)::

    #pragma np parallel for
        [reduction(op : var[, var...])]
        [scan(op : var[, var...])]
        [copyin(var[, var...])]
        [num_threads(N)]
        [np_type(inter|intra)]
        [sm_version(N)]

``op`` is one of ``+``, ``*``, ``min``, ``max``.  Multiple reduction/scan
clauses are allowed and accumulate.
"""

from __future__ import annotations

import re

from .errors import PragmaError, SourceLoc
from .nodes import NpPragma

#: Reduction operators supported by the code generators.
REDUCTION_OPS = ("+", "*", "min", "max")
#: Scan needs an invertible-free two-phase implementation: + and * only.
SCAN_OPS = ("+", "*")

_CLAUSE_RE = re.compile(r"([A-Za-z_]+)\s*\(([^)]*)\)")


def is_np_pragma(text: str) -> bool:
    """True when a raw pragma body (after '#pragma') belongs to CUDA-NP."""
    return text.split()[:1] == ["np"]


def parse_np_pragma(text: str, loc: SourceLoc | None = None) -> NpPragma:
    """Parse the body of a ``#pragma np ...`` line into an :class:`NpPragma`."""
    stripped = text.strip()
    if not stripped.startswith("np"):
        raise PragmaError(f"not an np pragma: {text!r}", loc)
    rest = stripped[2:].strip()
    if not re.match(r"^parallel\s+for\b", rest):
        raise PragmaError(f"expected 'parallel for' in pragma: {text!r}", loc)
    rest = re.sub(r"^parallel\s+for\b", "", rest).strip()

    pragma = NpPragma()
    consumed_spans: list[tuple[int, int]] = []
    for m in _CLAUSE_RE.finditer(rest):
        clause, body = m.group(1), m.group(2).strip()
        consumed_spans.append(m.span())
        if clause == "reduction":
            pragma.reductions.extend(_parse_op_list(clause, body, loc, REDUCTION_OPS))
        elif clause == "scan":
            pragma.scans.extend(_parse_op_list(clause, body, loc, SCAN_OPS))
        elif clause == "copyin":
            pragma.copyins.extend(_parse_var_list(clause, body, loc))
        elif clause == "num_threads":
            pragma.num_threads = _parse_int(clause, body, loc)
            if pragma.num_threads < 1:
                raise PragmaError(f"num_threads must be >= 1, got {body}", loc)
        elif clause == "np_type":
            if body not in ("inter", "intra"):
                raise PragmaError(f"np_type must be inter|intra, got {body!r}", loc)
            pragma.np_type = body
        elif clause == "sm_version":
            pragma.sm_version = _parse_int(clause, body, loc)
        else:
            raise PragmaError(f"unknown np clause {clause!r}", loc)

    leftover = rest
    for start, end in reversed(consumed_spans):
        leftover = leftover[:start] + leftover[end:]
    if leftover.strip():
        raise PragmaError(f"trailing junk in np pragma: {leftover.strip()!r}", loc)
    return pragma


def _parse_op_list(clause: str, body: str, loc, allowed) -> list[tuple[str, str]]:
    if ":" not in body:
        raise PragmaError(f"{clause} clause needs 'op : vars', got {body!r}", loc)
    op, _, vars_part = body.partition(":")
    op = op.strip()
    if op not in allowed:
        raise PragmaError(
            f"unsupported {clause} operator {op!r} (supported: {allowed})", loc
        )
    return [(op, v) for v in _parse_var_list(clause, vars_part, loc)]


def _parse_var_list(clause: str, body: str, loc) -> list[str]:
    out = [v.strip() for v in body.split(",") if v.strip()]
    if not out:
        raise PragmaError(f"empty variable list in {clause} clause", loc)
    for v in out:
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", v):
            raise PragmaError(f"bad variable name {v!r} in {clause} clause", loc)
    return out


def _parse_int(clause: str, body: str, loc) -> int:
    try:
        return int(body, 0)
    except ValueError as exc:
        raise PragmaError(f"{clause} expects an integer, got {body!r}", loc) from exc
