"""Recursive-descent parser for the mini-CUDA language.

Produces the :mod:`repro.minicuda.nodes` AST.  The grammar is the C subset
that the paper's benchmarks exercise: kernel definitions, scalar / pointer /
array declarations (with ``__shared__``), structured control flow, full C
expression precedence, casts, and ``#pragma np`` directives attached to the
following ``for`` loop.
"""

from __future__ import annotations

from typing import Optional

from .errors import ParseError, SourceLoc
from .lexer import Lexer
from .nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    BoolLit,
    Call,
    Cast,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IntLit,
    Kernel,
    Member,
    Name,
    Param,
    PointerType,
    Program,
    Return,
    Break,
    Continue,
    ScalarType,
    Stmt,
    Ternary,
    Type,
    Unary,
    VarDecl,
    While,
)
from .pragma import is_np_pragma, parse_np_pragma
from .tokens import TokKind, Token

# Binary operator precedence (C-like).  Higher binds tighter.
_BINOP_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

_TYPE_KEYWORDS = ("void", "int", "unsigned", "float", "bool", "char")


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[Token], defines: Optional[dict[str, str]] = None):
        self._toks = tokens
        self._pos = 0
        self._defines = defines or {}

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self._pos + offset, len(self._toks) - 1)
        return self._toks[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            self._pos += 1
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._next()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program(defines=dict(self._defines))
        while self._peek().kind is not TokKind.EOF:
            tok = self._peek()
            if tok.is_keyword("__global__") or tok.is_keyword("__device__"):
                kernel = self._parse_kernel()
                program.kernels[kernel.name] = kernel
            else:
                raise ParseError(
                    f"expected kernel definition, found {tok.text!r}", tok.loc
                )
        return program

    def _parse_kernel(self) -> Kernel:
        loc = self._peek().loc
        self._next()  # __global__ / __device__
        ret = self._parse_scalar_type_name()
        if ret.name != "void":
            raise ParseError("kernels must return void", loc)
        name = self._expect_ident().text
        self._expect_punct("(")
        params: list[Param] = []
        if not self._peek().is_punct(")"):
            while True:
                params.append(self._parse_param())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return Kernel(name=name, params=params, body=body, loc=loc)

    def _parse_param(self) -> Param:
        loc = self._peek().loc
        self._accept_keyword("const")
        scalar = self._parse_scalar_type_name()
        self._accept_keyword("const")
        type_: Type = scalar
        if self._accept_punct("*"):
            type_ = PointerType(scalar)
            self._accept_keyword("__restrict__")
            self._accept_keyword("const")
        name = self._expect_ident().text
        return Param(name=name, type=type_, loc=loc)

    def _parse_scalar_type_name(self) -> ScalarType:
        tok = self._peek()
        if tok.is_keyword("unsigned"):
            self._next()
            self._accept_keyword("int")
            return ScalarType("uint")
        for kw in _TYPE_KEYWORDS:
            if tok.is_keyword(kw):
                self._next()
                return ScalarType({"char": "int"}.get(kw, kw))
        raise ParseError(f"expected type name, found {tok.text!r}", tok.loc)

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind is TokKind.KEYWORD and tok.text in (
            _TYPE_KEYWORDS + ("const", "__shared__", "__constant__", "unsigned")
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> Block:
        self._expect_punct("{")
        stmts: list[Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokKind.EOF:
                raise ParseError("unterminated block", self._peek().loc)
            stmts.extend(self._parse_stmt())
        self._expect_punct("}")
        return Block(stmts)

    def _parse_stmt_as_block(self) -> Block:
        """Parse a statement; wrap a non-block statement in a Block."""
        if self._peek().is_punct("{"):
            return self._parse_block()
        return Block(self._parse_stmt())

    def _parse_stmt(self) -> list[Stmt]:
        tok = self._peek()
        if tok.kind is TokKind.PRAGMA:
            self._next()
            if not is_np_pragma(tok.text):
                return []  # ignore foreign pragmas (e.g. unroll)
            pragma = parse_np_pragma(tok.text, tok.loc)
            nxt = self._peek()
            if not nxt.is_keyword("for"):
                raise ParseError(
                    "#pragma np parallel for must precede a for loop", tok.loc
                )
            stmt = self._parse_for()
            stmt.pragma = pragma
            return [stmt]
        if tok.is_punct("{"):
            return [self._parse_block()]
        if tok.is_punct(";"):
            self._next()
            return []
        if tok.is_keyword("if"):
            return [self._parse_if()]
        if tok.is_keyword("for"):
            return [self._parse_for()]
        if tok.is_keyword("while"):
            return [self._parse_while()]
        if tok.is_keyword("return"):
            self._next()
            value = None if self._peek().is_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return [Return(value, loc=tok.loc)]
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return [Break(loc=tok.loc)]
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return [Continue(loc=tok.loc)]
        if self._at_type():
            decls = self._parse_decls()
            self._expect_punct(";")
            return decls
        stmt = self._parse_expr_or_assign()
        self._expect_punct(";")
        return [stmt]

    def _parse_if(self) -> If:
        loc = self._next().loc  # 'if'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt_as_block()
        els = None
        if self._accept_keyword("else"):
            if self._peek().is_keyword("if"):
                els = Block([self._parse_if()])
            else:
                els = self._parse_stmt_as_block()
        return If(cond, then, els, loc=loc)

    def _parse_for(self) -> For:
        loc = self._next().loc  # 'for'
        self._expect_punct("(")
        init: Optional[Stmt] = None
        if not self._peek().is_punct(";"):
            if self._at_type():
                decls = self._parse_decls()
                if len(decls) != 1:
                    raise ParseError("for-init must declare one variable", loc)
                init = decls[0]
            else:
                init = self._parse_expr_or_assign()
        self._expect_punct(";")
        cond = None if self._peek().is_punct(";") else self._parse_expr()
        self._expect_punct(";")
        update = None
        if not self._peek().is_punct(")"):
            update = self._parse_expr_or_assign()
        self._expect_punct(")")
        body = self._parse_stmt_as_block()
        return For(init, cond, update, body, loc=loc)

    def _parse_while(self) -> While:
        loc = self._next().loc
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt_as_block()
        return While(cond, body, loc=loc)

    def _parse_decls(self) -> list[Stmt]:
        loc = self._peek().loc
        space = "local"
        if self._accept_keyword("__shared__"):
            space = "shared"
        elif self._accept_keyword("__constant__"):
            space = "constant"
        const = self._accept_keyword("const")
        scalar = self._parse_scalar_type_name()
        const = self._accept_keyword("const") or const

        decls: list[Stmt] = []
        while True:
            is_ptr = self._accept_punct("*")
            name = self._expect_ident().text
            dims: list[int] = []
            while self._accept_punct("["):
                dim_expr = self._parse_expr()
                self._expect_punct("]")
                dims.append(self._const_int(dim_expr))
            type_: Type
            if dims:
                if is_ptr:
                    raise ParseError("pointer-to-array not supported", loc)
                type_ = ArrayType(scalar, tuple(dims), space)
            elif is_ptr:
                type_ = PointerType(scalar)
            else:
                if space != "local":
                    raise ParseError(
                        f"{space} qualifier requires an array declaration", loc
                    )
                type_ = scalar
            init = None
            if self._accept_punct("="):
                init = self._parse_assign_rhs()
            decls.append(VarDecl(name, type_, init, const=const, loc=loc))
            if not self._accept_punct(","):
                break
        return decls

    def _parse_expr_or_assign(self) -> Stmt:
        loc = self._peek().loc
        # Prefix ++/--
        for op, delta in (("++", 1), ("--", -1)):
            if self._peek().is_punct(op):
                self._next()
                target = self._parse_unary()
                return Assign(target, "+=", IntLit(delta), loc=loc)
        expr = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assign_rhs()
            if not isinstance(expr, (Name, Index, Member)):
                raise ParseError("invalid assignment target", loc)
            return Assign(expr, tok.text, value, loc=loc)
        for op, delta in (("++", 1), ("--", -1)):
            if self._accept_punct(op):
                return Assign(expr, "+=", IntLit(delta), loc=loc)
        return ExprStmt(expr, loc=loc)

    def _parse_assign_rhs(self) -> Expr:
        return self._parse_ternary()

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self._parse_ternary()
            self._expect_punct(":")
            els = self._parse_ternary()
            return Ternary(cond, then, els)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokKind.PUNCT:
                return lhs
            prec = _BINOP_PREC.get(tok.text, 0)
            if prec == 0 or prec < min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec + 1)
            lhs = Binary(tok.text, lhs, rhs, loc=tok.loc)

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokKind.PUNCT and tok.text in ("-", "+", "!", "~"):
            self._next()
            return Unary(tok.text, self._parse_unary(), loc=tok.loc)
        if tok.is_punct("(") and self._at_type(1):
            # Cast: '(' type [*]? ')' unary   (pointer casts are decayed)
            self._next()
            scalar = self._parse_scalar_type_name()
            self._accept_punct("*")
            self._expect_punct(")")
            return Cast(scalar, self._parse_unary(), loc=tok.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = Index(expr, index, loc=tok.loc)
            elif tok.is_punct("."):
                self._next()
                member = self._expect_ident().text
                expr = Member(expr, member, loc=tok.loc)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.is_punct("("):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if tok.kind is TokKind.INT:
            self._next()
            text = tok.text.rstrip("uU")
            return IntLit(int(text, 0), loc=tok.loc)
        if tok.kind is TokKind.FLOAT:
            self._next()
            return FloatLit(float(tok.text.rstrip("fF")), loc=tok.loc)
        if tok.is_keyword("true"):
            self._next()
            return BoolLit(True, loc=tok.loc)
        if tok.is_keyword("false"):
            self._next()
            return BoolLit(False, loc=tok.loc)
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._peek().is_punct("("):
                self._next()
                args: list[Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_ternary())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return Call(tok.text, args, loc=tok.loc)
            return Name(tok.text, loc=tok.loc)
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)

    # -- constant folding ----------------------------------------------------

    def _const_int(self, expr: Expr) -> int:
        value = const_eval(expr)
        if not isinstance(value, int):
            raise ParseError("array dimension must be a constant integer", expr.loc)
        return value


def const_eval(expr: Expr):
    """Evaluate a constant expression to a Python int/float, or None."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return int(expr.value)
    if isinstance(expr, Unary):
        v = const_eval(expr.operand)
        if v is None:
            return None
        return {"-": lambda x: -x, "+": lambda x: x, "!": lambda x: int(not x), "~": lambda x: ~x}[
            expr.op
        ](v)
    if isinstance(expr, Binary):
        a, b = const_eval(expr.lhs), const_eval(expr.rhs)
        if a is None or b is None:
            return None
        if expr.op == "/" and isinstance(a, int) and isinstance(b, int):
            if b == 0:
                return None
            return int(a / b)  # C semantics: truncate toward zero
        if expr.op == "%" and isinstance(a, int) and isinstance(b, int):
            if b == 0:
                return None
            return a - int(a / b) * b
        ops = {
            "+": lambda x, y: x + y,
            "-": lambda x, y: x - y,
            "*": lambda x, y: x * y,
            "/": lambda x, y: x / y if y else None,
            "<<": lambda x, y: x << y,
            ">>": lambda x, y: x >> y,
            "&": lambda x, y: x & y,
            "|": lambda x, y: x | y,
            "^": lambda x, y: x ^ y,
            "<": lambda x, y: int(x < y),
            ">": lambda x, y: int(x > y),
            "<=": lambda x, y: int(x <= y),
            ">=": lambda x, y: int(x >= y),
            "==": lambda x, y: int(x == y),
            "!=": lambda x, y: int(x != y),
            "&&": lambda x, y: int(bool(x) and bool(y)),
            "||": lambda x, y: int(bool(x) or bool(y)),
        }
        fn = ops.get(expr.op)
        return None if fn is None else fn(a, b)
    return None


def parse(source: str) -> Program:
    """Parse mini-CUDA ``source`` into a :class:`Program`."""
    lexer = Lexer(source)
    tokens = lexer.tokenize()
    return Parser(tokens, lexer.defines).parse_program()


def parse_kernel(source: str, name: Optional[str] = None) -> Kernel:
    """Parse ``source`` and return one kernel (by name, or the only one)."""
    program = parse(source)
    if name is not None:
        if name not in program.kernels:
            raise ParseError(f"kernel {name!r} not found")
        return program.kernels[name]
    if len(program.kernels) != 1:
        raise ParseError(
            f"expected exactly one kernel, found {sorted(program.kernels)}"
        )
    return next(iter(program.kernels.values()))
