"""CUDA-NP reproduction (Yang & Zhou, PPoPP 2014).

A directive-based source-to-source compiler that realizes *nested
thread-level parallelism* inside GPU kernels, reproduced in pure Python on a
software GPU:

- :mod:`repro.minicuda` — the CUDA-C-subset kernel language + ``#pragma np``
- :mod:`repro.analysis` — liveness, uniformity, memory spaces, resources
- :mod:`repro.npc`      — the CUDA-NP compiler (master/slave transformation,
  broadcast, reduction/scan, local-array replacement, padding, auto-tuning)
- :mod:`repro.gpusim`   — functional SIMT simulator + Hong–Kim timing model
- :mod:`repro.kernels`  — the ten paper benchmarks and comparators
- :mod:`repro.experiments` — regenerates every table and figure

Quickstart::

    from repro.kernels import TmvBenchmark

    bench = TmvBenchmark(width=256, height=256)
    report = bench.autotune()          # explore the CUDA-NP variant space
    print(report.best.label, report.best_speedup)
"""

__version__ = "1.0.0"

from .npc.pipeline import compile_np, CompiledVariant  # noqa: E402,F401
from .gpusim.launch import run_kernel, launch  # noqa: E402,F401
from .gpusim.device import GTX680, K20C, DeviceSpec  # noqa: E402,F401

__all__ = [
    "__version__",
    "compile_np",
    "CompiledVariant",
    "run_kernel",
    "launch",
    "GTX680",
    "K20C",
    "DeviceSpec",
]
