"""Figure 16 — __shfl vs shared memory for reduction/scan (intra-warp NP).

For every benchmark with a reduction or scan, the intra-warp variant is
compiled twice — once exchanging partials through ``__shfl`` registers,
once through shared memory — and both are normalized to the best inter-warp
version (the paper's baseline for this figure).  The paper finds __shfl
matters most for MC and LU (whose shared memory is already the occupancy
bottleneck) and is minor elsewhere.
"""

from __future__ import annotations

from ..kernels import BENCHMARKS
from ..npc.config import NpConfig
from .scales import paper_scale
from .util import ExperimentResult, attach_profile, profile_kwargs

SLAVE = 8
INTER_SIZES = (4, 8)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 16: __shfl vs shared-memory reduction/scan."""
    result = ExperimentResult(
        exp_id="fig16",
        title="Intra-warp NP: __shfl vs shared-memory reduction/scan "
              "(normalized to best inter-warp)",
        headers=["Benchmark", "intra+shfl", "intra+smem", "shfl speedup over smem"],
    )
    for name in BENCHMARKS:
        bench, sample = paper_scale(name, fast=fast)
        base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
        attach_profile("fig16", name, base)
        # Best inter-warp version = the figure's 1.0 reference.
        best_inter = None
        for s in INTER_SIZES:
            if bench.flat_block_size * s > bench.device.max_threads_per_block:
                continue
            res = bench.run_variant(
                NpConfig(slave_size=s, np_type="inter"), sample_blocks=sample
            )
            if best_inter is None or res.timing.seconds < best_inter:
                best_inter = res.timing.seconds
        if best_inter is None:
            continue
        try:
            t_shfl = bench.run_variant(
                NpConfig(slave_size=SLAVE, np_type="intra", use_shfl=True, padded=True),
                sample_blocks=sample,
            ).timing.seconds
            t_smem = bench.run_variant(
                NpConfig(slave_size=SLAVE, np_type="intra", use_shfl=False, padded=True),
                sample_blocks=sample,
            ).timing.seconds
        except Exception:
            continue
        result.rows.append(
            [
                name,
                round(best_inter / t_shfl, 2),
                round(best_inter / t_smem, 2),
                round(t_smem / t_shfl, 2),
            ]
        )
    shfl_gains = {row[0]: row[3] for row in result.rows}
    helped = sorted(
        (n for n, g in shfl_gains.items() if g > 1.02), key=lambda n: -shfl_gains[n]
    )
    result.paper_anchors = [
        ("__shfl helps most where shared memory is the bottleneck",
         "MC, LU", ", ".join(helped[:3]) if helped else "(none)"),
    ]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
