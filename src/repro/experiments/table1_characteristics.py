"""Table 1 — benchmark characteristics and per-thread resource usage.

PL / LC / R-S come from the benchmark definitions; the REG/SM/LM byte
columns come from our resource estimator over the baseline kernel (BL) and
over the CUDA-NP variant the auto-tuner would pick by default (OPT).
Absolute bytes differ from ptxas (see DESIGN.md — the estimator is a proxy),
so the comparison of interest is the *direction* of the BL→OPT change:
local memory shrinking after partitioning, shared memory shrinking when
arrays leave shared, etc.
"""

from __future__ import annotations

from ..gpusim.errors import SimError
from ..kernels import BENCHMARKS
from ..minicuda.errors import MiniCudaError
from ..npc.config import NpConfig
from .util import ExperimentResult

#: Paper Table 1 values (bytes per thread) for the anchor comparison.
PAPER_TABLE1 = {
    #        PL  LC   R/S  REGb SMb LMb  REGo SMo LMo
    "MC":  (4, 12, "X", 252, 288, 40, 144, 36, 0),
    "LU":  (4, 32, "R", 44, 96, 0, 72, 24, 0),
    "LE":  (3, 150, "R", 156, 0, 600, 252, 4, 24),
    "MV":  (1, 32, "R", 100, 132, 0, 100, 34, 0),
    "SS":  (2, 8192, "R", 60, 80, 0, 72, 20, 0),
    "LIB": (4, 80, "S", 216, 0, 960, 200, 40, 640),
    "CFD": (1, 4, "R", 252, 0, 56, 252, 0, 8),
    "BK":  (2, 32, "X", 60, 128, 0, 56, 4, 0),
    "TMV": (1, 2048, "R", 88, 0, 0, 64, 4, 0),
    "NN":  (1, 1024, "R", 88, 0, 0, 56, 0, 0),
}

#: Representative OPT configuration per benchmark for resource reporting.
DEFAULT_OPT = NpConfig(slave_size=8, np_type="inter")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table 1: benchmark characteristics and resources."""
    result = ExperimentResult(
        exp_id="table1",
        title="Benchmark characteristics + per-thread resources (BL vs OPT)",
        headers=[
            "Name", "Input (scaled)", "PL", "LC", "R/S",
            "REG(BL)", "SM/thr(BL)", "LM(BL)",
            "REG(OPT)", "SM/thr(OPT)", "LM(OPT)",
        ],
    )
    for name, cls in BENCHMARKS.items():
        try:
            bench = cls()
            ch = bench.characteristics
            bl = bench.resource_report()
            threads_bl = bench.flat_block_size
            variant = bench.compile_variant(DEFAULT_OPT)
            opt = bench.variant_resource_report(DEFAULT_OPT)
            threads_opt = variant.threads_per_block
        except (SimError, MiniCudaError) as exc:
            result.add_failure(name, exc)
            continue
        result.rows.append(
            [
                name,
                bench.scaled_input,
                ch.parallel_loops,
                ch.loop_count,
                ch.rs_label,
                bl.reg_bytes_per_thread,
                round(bl.shared_bytes_per_block / threads_bl, 1),
                bl.local_bytes_per_thread,
                opt.reg_bytes_per_thread,
                round(opt.shared_bytes_per_block / threads_opt, 1),
                opt.local_bytes_per_thread,
            ]
        )
        paper = PAPER_TABLE1[name]
        if paper[5] > paper[8]:  # paper's LM shrank
            result.paper_anchors.append(
                (
                    f"{name} local-memory change BL->OPT",
                    f"{paper[5]} -> {paper[8]} B",
                    f"{bl.local_bytes_per_thread} -> {opt.local_bytes_per_thread} B",
                )
            )
    result.notes.append(
        "PL/LC/R-S match the paper structurally; byte columns are estimator "
        "values (no ptxas available) — directions of change are the signal"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
