"""§6 (in-text table) — dynamic-parallelism slowdowns.

The paper implemented dynamic-parallelism versions of NN, TMV, LE, LIB and
CFD (the benchmarks whose parallel loops don't touch shared memory) and
measured slowdowns of 28.92×, 7.61×, 13.45×, 125.67× and 52.29× vs the
original kernels: every parent thread launches a child kernel per parallel
loop, and the launch overhead + global-memory communication swamps the
available nested parallelism.  A hand-optimized NN (one launch per TB) is
still 3.25× slower.

We regenerate the comparison with the calibrated §2.1 cost model on top of
each baseline's simulated time: launches = parent threads × parallel loops
(the paper's per-thread-launch scheme).
"""

from __future__ import annotations

from ..gpusim.dynpar import DynParModel
from ..gpusim.errors import SimError
from ..kernels import BENCHMARKS
from .util import ExperimentResult

#: Paper-reported slowdowns (benchmark -> factor).
PAPER = {"NN": 28.92, "TMV": 7.61, "LE": 13.45, "LIB": 125.67, "CFD": 52.29}


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate the §6 dynamic-parallelism slowdown table."""
    model = DynParModel()
    result = ExperimentResult(
        exp_id="sec6",
        title="Dynamic-parallelism versions vs original baselines (slowdown x)",
        headers=["Benchmark", "launches", "measured slowdown", "paper slowdown"],
    )
    # Paper-scale grids (sampled); per-thread-launch scheme: every master
    # thread launches one child grid per parallel loop it executes.
    scale = 4 if fast else 1
    sample = 2 if fast else 4
    sizes = {
        "NN": dict(queries=8192 // scale),
        "TMV": dict(width=2048 // scale, height=2048 // scale, block=128),
        "LE": dict(positions=4096 // scale),
        "LIB": dict(npath=16384 // scale),
        "CFD": dict(ncells=16384 // scale),
    }
    for name in ("NN", "TMV", "LE", "LIB", "CFD"):
        try:
            bench = BENCHMARKS[name](**sizes[name])
            base = bench.run_baseline(sample_blocks=sample)
            threads = base.total_blocks * bench.flat_block_size
            launches = threads * bench.characteristics.parallel_loops
            slowdown = model.slowdown_vs_baseline(base, launches)
        except SimError as exc:
            result.add_failure(name, exc)
            continue
        result.rows.append([name, launches, round(slowdown, 2), PAPER[name]])
        result.paper_anchors.append(
            (f"{name} DP slowdown", f"{PAPER[name]}x", f"{slowdown:.2f}x")
        )
    # The hand-optimized NN: one child launch per thread block.
    try:
        bench = BENCHMARKS["NN"](**sizes["NN"])
        base = bench.run_baseline(sample_blocks=sample)
        launches = base.total_blocks
        slowdown = model.slowdown_vs_baseline(base, launches)
    except SimError as exc:
        result.add_failure("NN (1 launch/TB)", exc)
    else:
        result.rows.append(
            ["NN (1 launch/TB)", launches, round(slowdown, 2), 3.25]
        )
        result.paper_anchors.append(
            ("NN optimized (one launch per TB)", "3.25x", f"{slowdown:.2f}x")
        )
    result.notes.append(
        "slowdowns scale with launches/baseline-time as in the paper; exact "
        "factors depend on the scaled inputs (documented in EXPERIMENTS.md)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
