"""Figure 11 — inter-warp vs intra-warp NP across slave sizes.

For every benchmark, speedup over the baseline for each (NP type,
slave_size) point, "n/a" where the resulting thread block would exceed the
device limit.  Paper findings to reproduce: LU and NN are the only
benchmarks where intra-warp wins (divergence elimination / coalescing);
everywhere else inter-warp is at least as good; more slaves is not always
better.
"""

from __future__ import annotations

from ..gpusim.errors import SimError
from ..kernels import BENCHMARKS
from ..npc.config import INTRA_WARP_SLAVE_SIZES, NpConfig
from .scales import paper_scale
from .util import ExperimentResult, attach_profile, describe_failure, profile_kwargs

SLAVE_SIZES = (2, 4, 8, 16, 32)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 11: inter- vs intra-warp NP across slave sizes."""
    sizes = (4, 8) if fast else SLAVE_SIZES
    headers = ["Benchmark"]
    for np_type in ("inter", "intra"):
        for s in sizes:
            headers.append(f"{np_type}-S{s}")
    result = ExperimentResult(
        exp_id="fig11",
        title="Speedup by NP type and slave size (n/a = config not applicable)",
        headers=headers,
    )
    winners: dict[str, str] = {}
    for name in BENCHMARKS:
        bench, sample = paper_scale(name, fast=fast)
        try:
            base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
        except SimError as exc:
            result.add_failure(name, exc)
            continue
        attach_profile("fig11", name, base)
        row: list[object] = [name]
        best_by_type = {"inter": 0.0, "intra": 0.0}
        for np_type in ("inter", "intra"):
            for s in sizes:
                if bench.flat_block_size * s > bench.device.max_threads_per_block:
                    row.append("n/a")
                    continue
                if np_type == "intra" and s not in INTRA_WARP_SLAVE_SIZES:
                    row.append("n/a")
                    continue
                config = NpConfig(
                    slave_size=s,
                    np_type=np_type,
                    use_shfl=(np_type == "intra"),
                    padded=(np_type == "intra"),
                )
                try:
                    res = bench.run_variant(config, sample_blocks=sample)
                except SimError as exc:
                    row.append("fault")
                    result.failures.append(
                        f"{name} {np_type}-S{s}: {describe_failure(exc)}"
                    )
                    continue
                except Exception:
                    row.append("err")
                    continue
                speedup = base.timing.seconds / res.timing.seconds
                row.append(round(speedup, 2))
                best_by_type[np_type] = max(best_by_type[np_type], speedup)
        # intra "wins" a benchmark when clearly ahead (>10%), matching the
        # paper's qualitative reading ("the difference ... is minor" cases
        # are not winners).
        winners[name] = (
            "intra" if best_by_type["intra"] > 1.1 * best_by_type["inter"] else "inter"
        )
        result.rows.append(row)
    intra_winners = sorted(n for n, t in winners.items() if t == "intra")
    result.paper_anchors = [
        (
            "benchmarks where intra-warp NP wins",
            "LU, NN",
            ", ".join(intra_winners) if intra_winners else "(none)",
        )
    ]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
