"""Experiment harness: regenerates every table and figure in the paper.

``EXPERIMENTS`` maps experiment ids to their ``run(fast: bool)`` callables;
``run_all`` executes them and returns formatted reports.  ``python -m
repro.experiments`` prints everything (use ``--fast`` for the scaled-down
sweep sizes).
"""

from . import (
    fig01_dynpar_memcopy,
    fig10_speedups,
    fig11_inter_intra,
    fig12_padding,
    fig13_tmv_sweep,
    fig14_mv_sweep,
    fig15_local_array,
    fig16_shfl,
    sec6_dynpar_slowdown,
    table1_characteristics,
)
from .util import ExperimentResult, describe_failure, format_table, geomean

EXPERIMENTS = {
    "fig01": fig01_dynpar_memcopy.run,
    "table1": table1_characteristics.run,
    "fig10": fig10_speedups.run,
    "fig11": fig11_inter_intra.run,
    "fig12": fig12_padding.run,
    "fig13": fig13_tmv_sweep.run,
    "fig14": fig14_mv_sweep.run,
    "fig15": fig15_local_array.run,
    "fig16": fig16_shfl.run,
    "sec6": sec6_dynpar_slowdown.run,
}


def run_all(fast: bool = False, only: list[str] | None = None) -> list[ExperimentResult]:
    """Run every experiment (or the selected ids) and return the results.

    Containment: a fault inside one experiment degrades that experiment to
    a failure record — the remaining experiments still run and report.
    """
    results = []
    for exp_id, fn in EXPERIMENTS.items():
        if only and exp_id not in only:
            continue
        try:
            results.append(fn(fast=fast))
        except Exception as exc:
            failed = ExperimentResult(
                exp_id=exp_id,
                title="experiment failed (remaining experiments unaffected)",
                headers=["experiment", "status"],
            )
            failed.add_failure(exp_id, exc)
            results.append(failed)
    return results


__all__ = [
    "EXPERIMENTS",
    "run_all",
    "ExperimentResult",
    "describe_failure",
    "format_table",
    "geomean",
]
