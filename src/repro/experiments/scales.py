"""Paper-scale benchmark configurations for the performance experiments.

Functional correctness is established by the test suite at small scale
(every block executed, outputs checked against numpy).  The *performance*
experiments need the paper's grid sizes — otherwise every baseline is
latency-starved by a tiny grid and any slave count looks linearly good —
so they instantiate the benchmarks near paper scale and sample a few
representative blocks per launch (the timing model extrapolates per-warp
statistics to the full grid).

``paper_scale(name)`` returns (benchmark instance, sample_blocks).
"""

from __future__ import annotations

from ..kernels import BENCHMARKS
from ..kernels.common import GpuBenchmark

#: Constructor arguments approximating each paper input (Table 1), chosen so
#: a sampled run stays interactive in the Python interpreter.
PAPER_SCALE_KWARGS: dict[str, dict] = {
    "MC": dict(nvox=8192),
    "LU": dict(matrix_dim=2048, offset=1024),  # mid-factorization step
    "LE": dict(positions=4096),
    "MV": dict(width=2048, height=2048, block=128),
    "SS": dict(dim=512, points=8192, block=64),
    "LIB": dict(npath=16384),
    "CFD": dict(ncells=65536),
    "BK": dict(elements=262144),
    "TMV": dict(width=2048, height=2048, block=128),
    "NN": dict(records=1024, queries=8192),
}

#: Blocks to execute functionally per launch at paper scale.
SAMPLE_BLOCKS = 4


def paper_scale(name: str, fast: bool = False) -> tuple[GpuBenchmark, int]:
    """Instantiate benchmark ``name`` at (near-)paper scale.

    ``fast`` quarters the grid-defining dimension to keep CI-style runs
    quick while preserving the large-grid regime.
    """
    kwargs = dict(PAPER_SCALE_KWARGS[name])
    if fast:
        for key in ("nvox", "matrix_dim", "positions", "height", "points",
                    "npath", "ncells", "elements", "queries", "offset"):
            if key in kwargs:
                floor = 0 if key == "offset" else 256
                kwargs[key] = max(kwargs[key] // 4, floor)
    bench = BENCHMARKS[name](**kwargs)
    return bench, SAMPLE_BLOCKS
