"""Figure 14 — MV vs CUBLAS vs SMM across matrix heights (width fixed 2K).

The height sets the baseline's thread count.  The paper reports that the
CUDA-NP version always outperforms both CUBLAS and the SMM version of [42],
with the gap largest at small heights (few threads).
"""

from __future__ import annotations

from ..kernels.cublas_proxy import CublasGemvN, SmmMv
from ..kernels.mv import MvBenchmark
from ..npc.config import NpConfig
from .util import ExperimentResult, attach_profile, profile_kwargs

FULL_HEIGHTS = (1024, 2048, 4096, 8192, 16384, 65536)
FAST_HEIGHTS = (512, 1024, 2048)
NP_SLAVE_SIZES = (2, 4, 8)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 14: MV vs CUBLAS/SMM proxies across heights."""
    heights = FAST_HEIGHTS if fast else FULL_HEIGHTS
    width = 512 if fast else 2048
    sample = 2 if fast else 4
    result = ExperimentResult(
        exp_id="fig14",
        title=f"MV sweep: heights x width={width} (modeled ms; lower is better)",
        headers=["height", "CUBLAS ms", "SMM ms", "baseline ms", "CUDA-NP ms",
                 "NP wins"],
    )
    always_wins = True
    for h in heights:
        cublas = CublasGemvN(width=width, height=h, block=128)
        t_cublas = cublas.run_baseline(sample_blocks=sample).timing.seconds
        smm = SmmMv(width=width, height=h, block=128)
        t_smm = smm.run_baseline(sample_blocks=sample).timing.seconds
        bench = MvBenchmark(width=width, height=h, block=128)
        base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
        attach_profile("fig14", f"MV-h{h}", base)
        t_base = base.timing.seconds
        # The auto-tuner picks the slave count per problem size (§4); large
        # heights saturate the GPU, so smaller groups win there.
        t_np = min(
            bench.run_variant(
                NpConfig(slave_size=s, np_type="inter"), sample_blocks=sample
            ).timing.seconds
            for s in NP_SLAVE_SIZES
        )
        # "wins" up to model noise: at the bandwidth-bound tail every
        # implementation converges to the same traffic.
        wins = t_np <= min(t_cublas, t_smm) * 1.05
        always_wins &= wins
        result.rows.append(
            [h, round(t_cublas * 1e3, 4), round(t_smm * 1e3, 4),
             round(t_base * 1e3, 4), round(t_np * 1e3, 4), wins]
        )
    result.paper_anchors = [
        ("CUDA-NP outperforms SMM and CUBLAS",
         "always", "always" if always_wins else "NOT always"),
    ]
    result.notes.append(
        "NP column is the best slave count per height; ties within 5% at "
        "the saturated tail count as wins (all kernels are traffic-bound "
        "there)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
