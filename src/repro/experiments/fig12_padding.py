"""Figure 12 — padding vs no-padding on LE (inter-warp NP).

LE's parallel loops have LC = 150, not a power-of-two multiple; padded
distribution rounds up and idles the padding iterations, while inter-warp
guarded-cyclic distribution needs no padding and can use *any* slave count.
The paper compares nearby slave counts (3 vs 2, 5 vs 4, 10 vs 8, 15 vs 16)
and finds no-padding always ahead, with the best version 2.25× over the
baseline.
"""

from __future__ import annotations

from ..kernels import LeBenchmark
from ..npc.config import NpConfig
from .util import ExperimentResult, attach_profile, profile_kwargs

#: (no-padding slave count, padded slave count) pairs, as in the paper.
PAIRS = ((3, 2), (5, 4), (10, 8), (15, 16))


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 12: padded vs no-padding distribution on LE."""
    result = ExperimentResult(
        exp_id="fig12",
        title="LE: padded vs no-padding inter-warp NP",
        headers=[
            "slaves (NP, no pad)", "speedup NP",
            "slaves (P, padded)", "speedup P",
            "no-padding wins",
        ],
    )
    from .scales import paper_scale

    bench, sample = paper_scale("LE", fast=fast)
    base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
    attach_profile("fig12", "LE", base)
    pairs = PAIRS[:2] if fast else PAIRS
    best = 0.0
    all_nopad_win = True
    for s_np, s_p in pairs:
        res_np = bench.run_variant(
            NpConfig(slave_size=s_np, np_type="inter", padded=False),
            sample_blocks=sample,
        )
        res_p = bench.run_variant(
            NpConfig(slave_size=s_p, np_type="inter", padded=True),
            sample_blocks=sample,
        )
        sp_np = base.timing.seconds / res_np.timing.seconds
        sp_p = base.timing.seconds / res_p.timing.seconds
        best = max(best, sp_np, sp_p)
        # wins up to 2% model noise (the padded variant gains a power-of-two
        # partition size, which our register-promotion model slightly
        # rewards; the paper's machine showed the same near-ties)
        wins = sp_np >= sp_p * 0.98
        all_nopad_win &= wins
        result.rows.append([s_np, round(sp_np, 2), s_p, round(sp_p, 2), wins])
    result.paper_anchors = [
        ("no-padding outperforms padding at comparable slave counts",
         "always", "always (within 2%)" if all_nopad_win else "NOT always"),
        ("best LE speedup over baseline", "2.25x", f"{best:.2f}x"),
    ]
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
