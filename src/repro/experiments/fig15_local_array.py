"""Figure 15 — replacing a local-memory array: global vs shared vs register.

LE and LIB are the two benchmarks with live local arrays eligible for all
three §3.3 placements.  The paper finds: global memory doesn't help (local
memory is L1-cached, global is off-chip); shared helps LIB but *hurts* LE
(LE's array is ~2× larger, so the shared footprint crushes occupancy);
register partitioning wins for both.
"""

from __future__ import annotations

from ..kernels.le import LeBenchmark
from ..kernels.lib import LibBenchmark
from ..npc.config import NpConfig
from .util import ExperimentResult, attach_profile, profile_kwargs

PLACEMENTS = ("global", "shared", "partition")
SLAVE = 8


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 15: global vs shared vs register replacement."""
    result = ExperimentResult(
        exp_id="fig15",
        title=f"Local-array placement comparison (inter-warp, S={SLAVE}; "
              "speedup over baseline)",
        headers=["Benchmark", "global", "shared", "register(partition)",
                 "winner"],
    )
    # Occupancy pressure only shows at scale: run a large grid with block
    # sampling (functional equivalence is covered by the unit tests).
    scale = 512 if fast else 4096
    sample = 2 if fast else 4
    ranks = {}
    for cls, kwargs in ((LeBenchmark, {"positions": scale}), (LibBenchmark, {"npath": scale})):
        bench = cls(**kwargs)
        base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
        attach_profile("fig15", bench.name, base)
        speeds = {}
        for placement in PLACEMENTS:
            config = NpConfig(
                slave_size=SLAVE,
                np_type="inter",
                local_placement=placement,  # type: ignore[arg-type]
            )
            try:
                res = bench.run_variant(config, sample_blocks=sample)
                speeds[placement] = base.timing.seconds / res.timing.seconds
            except Exception:
                speeds[placement] = None
        winner = max(
            (p for p in PLACEMENTS if speeds[p] is not None),
            key=lambda p: speeds[p],
        )
        ranks[bench.name] = (speeds, winner)
        result.rows.append(
            [
                bench.name,
                _fmt(speeds["global"]),
                _fmt(speeds["shared"]),
                _fmt(speeds["partition"]),
                winner,
            ]
        )
    result.paper_anchors = [
        ("register partitioning wins for LE and LIB", "both",
         "both" if all(w == "partition" for _, w in ranks.values()) else "no"),
    ]
    le_speeds = ranks.get("LE", ({}, ""))[0]
    if le_speeds.get("shared") and le_speeds.get("partition"):
        result.paper_anchors.append(
            ("LE: heavy shared usage hurts vs registers", "shared < register",
             "yes" if le_speeds["shared"] < le_speeds["partition"] else "no")
        )
    return result


def _fmt(v):
    return "n/a" if v is None else round(v, 2)


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
