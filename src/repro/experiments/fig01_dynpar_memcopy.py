"""Figure 1 — dynamic-parallelism memcopy throughput.

64M floats copied by m parent threads × n child-kernel threads (m·n fixed);
the paper shows bandwidth collapsing as the number of child launches grows,
with three stated anchors: 142 GB/s plain, 63 GB/s DP-enabled, ~34 GB/s at
16k-thread children.
"""

from __future__ import annotations

from ..gpusim.device import K20C
from ..gpusim.dynpar import DynParModel
from .util import ExperimentResult

TOTAL_FLOATS = 64 * 1024 * 1024
#: Parent-thread counts m; child size n = TOTAL/m  (the paper's x-axis).
PARENT_COUNTS = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 1: bandwidth vs number of child-kernel launches."""
    model = DynParModel(device=K20C)
    result = ExperimentResult(
        exp_id="fig01",
        title="Dynamic-parallelism memcopy throughput (K20c, 64M floats)",
        headers=["parents m", "child threads n", "bandwidth GB/s"],
    )
    result.rows.append(["(plain)", "-", round(model.plain_bandwidth_gbs, 1)])
    result.rows.append(["(DP-enabled, no launch)", "-", round(model.enabled_bandwidth_gbs, 1)])
    measured_34 = None
    for m in PARENT_COUNTS:
        n = TOTAL_FLOATS // m
        bw = model.memcopy_bandwidth_gbs(TOTAL_FLOATS, m)
        result.rows.append([m, n, round(bw, 1)])
        if n == 16384:
            measured_34 = bw
    result.paper_anchors = [
        ("plain memcopy bandwidth", "142 GB/s", f"{model.plain_bandwidth_gbs:.1f} GB/s"),
        ("DP-enabled kernel bandwidth", "63 GB/s", f"{model.enabled_bandwidth_gbs:.1f} GB/s"),
        ("bandwidth at 16k-thread children", "34 GB/s", f"{measured_34:.1f} GB/s"),
    ]
    result.notes.append(
        "monotone collapse with launch count reproduces the paper's shape; "
        "the per-launch overhead (1.7 us) was calibrated from the 34 GB/s anchor"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
