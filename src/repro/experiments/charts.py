"""Terminal bar charts for the regenerated figures.

The paper's evaluation is all bar charts; a terminal-first reproduction
should render them too.  ``bar_chart`` draws horizontal bars with aligned
labels and values; ``grouped_bar_chart`` interleaves series (e.g. inter- vs
intra-warp per benchmark, Fig. 11 style).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_FULL = "█"
_PART = (" ", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value) / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    out = _FULL * whole
    if frac and whole < width:
        out += _PART[frac]
    return out


def bar_chart(
    data: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bar chart; ``baseline`` draws a reference tick (e.g. 1.0x)."""
    if not data:
        return title
    scale = max(data.values())
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for label, value in data.items():
        bar = _bar(value, scale, width)
        mark = ""
        if baseline is not None and scale > 0:
            pos = int(baseline / scale * width)
            if 0 <= pos < width:
                padded = bar.ljust(width)
                mark_char = "|" if pos >= len(bar) else "+"
                padded = padded[:pos] + mark_char + padded[pos + 1:]
                bar = padded.rstrip()
        lines.append(f"{label:<{label_w}} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 36,
    unit: str = "x",
) -> str:
    """One block per group, one bar per series (Fig. 11-style layout)."""
    lines = [title] if title else []
    all_values = [v for series in groups.values() for v in series.values()]
    scale = max(all_values) if all_values else 1.0
    series_w = max(
        (len(s) for series in groups.values() for s in series), default=0
    )
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            lines.append(
                f"  {name:<{series_w}} {_bar(value, scale, width)} "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


def chart_fig10(result) -> str:
    """Render a fig10-shaped ExperimentResult as bars with the 1x tick."""
    data = {
        str(row[0]): float(row[4])
        for row in result.rows
        if isinstance(row[4], (int, float))
    }
    return bar_chart(
        data, title=result.title, unit="x", baseline=1.0
    )


def chart_fig11(result) -> str:
    """Render a fig11-shaped ExperimentResult as grouped bars."""
    groups: dict[str, dict[str, float]] = {}
    headers = result.headers[1:]
    for row in result.rows:
        series = {
            h: float(v)
            for h, v in zip(headers, row[1:])
            if isinstance(v, (int, float))
        }
        groups[str(row[0])] = series
    return grouped_bar_chart(groups, title=result.title)
