"""Figure 10 — CUDA-NP speedup over the baseline, per benchmark + GM.

Each benchmark is auto-tuned over the §4 variant space (inter/intra-warp ×
slave sizes); the best functionally-correct variant's modeled time is
compared with the baseline's.  The paper reports speedups from 1.36× to
6.69× with a geometric mean of 2.18×.
"""

from __future__ import annotations

from ..gpusim.errors import SimError
from ..kernels import BENCHMARKS
from .scales import paper_scale
from .util import ExperimentResult, autotune_kwargs, geomean

FAST_SLAVE_SIZES = (4, 8)
FULL_SLAVE_SIZES = (2, 4, 8, 16, 32)


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 10: auto-tuned CUDA-NP speedups + geometric mean."""
    result = ExperimentResult(
        exp_id="fig10",
        title="Speedup of CUDA-NP over baseline (auto-tuned best variant, "
              "paper-scale grids)",
        headers=["Benchmark", "best variant", "baseline ms", "best ms", "speedup"],
    )
    sizes = FAST_SLAVE_SIZES if fast else FULL_SLAVE_SIZES
    speedups = []
    for name in BENCHMARKS:
        bench, sample = paper_scale(name, fast=fast)
        try:
            report = bench.autotune(
                configs=bench.configs(slave_sizes=sizes),
                check=False,          # sampled launches: outputs are partial
                sample_blocks=sample,
                **autotune_kwargs(),  # --parallel shards the variant space
            )
            best = report.best      # RuntimeError when every variant faulted
            speedup = report.best_speedup
        except (SimError, RuntimeError) as exc:
            result.add_failure(name, exc)
            continue
        speedups.append(speedup)
        result.rows.append(
            [
                name,
                best.label,
                round(report.baseline.timing.milliseconds, 4),
                round(best.seconds * 1e3, 4),
                round(speedup, 2),
            ]
        )
    gm = geomean(speedups)
    result.rows.append(["GM", "-", "-", "-", round(gm, 2)])
    result.paper_anchors = [
        ("speedup range", "1.36x .. 6.69x",
         f"{min(speedups):.2f}x .. {max(speedups):.2f}x"),
        ("geometric mean", "2.18x", f"{gm:.2f}x"),
    ]
    result.notes.append(
        "timing uses paper-scale grids with block sampling; functional "
        "equivalence of every variant is asserted by the test suite at "
        "full-execution scale"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
