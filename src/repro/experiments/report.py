"""Machine-readable experiment reports.

``to_json``/``save_json`` serialize :class:`ExperimentResult` objects so CI
can diff regenerated tables across commits, and ``load_json`` round-trips
them for comparison tooling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Union

from .util import ExperimentResult


def to_json(results: Iterable[ExperimentResult]) -> str:
    """Serialize results (stable key order, human-diffable)."""
    payload = [
        {
            "exp_id": r.exp_id,
            "title": r.title,
            "headers": list(r.headers),
            "rows": [[_plain(c) for c in row] for row in r.rows],
            "paper_anchors": [list(a) for a in r.paper_anchors],
            "notes": list(r.notes),
        }
        for r in results
    ]
    return json.dumps(payload, indent=2, sort_keys=False)


def _plain(cell):
    if isinstance(cell, (bool, int, float, str)) or cell is None:
        return cell
    return str(cell)


def save_json(results: Iterable[ExperimentResult], path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the JSON report; returns the path."""
    path = pathlib.Path(path)
    path.write_text(to_json(results))
    return path


def load_json(path: Union[str, pathlib.Path]) -> list[ExperimentResult]:
    """Reload a saved report as result objects."""
    raw = json.loads(pathlib.Path(path).read_text())
    return [
        ExperimentResult(
            exp_id=e["exp_id"],
            title=e["title"],
            headers=e["headers"],
            rows=e["rows"],
            paper_anchors=[tuple(a) for a in e["paper_anchors"]],
            notes=e["notes"],
        )
        for e in raw
    ]


def anchors_table(results: Iterable[ExperimentResult]) -> list[tuple[str, str, str, str]]:
    """Flatten every paper anchor as (experiment, claim, paper, measured)."""
    out = []
    for r in results:
        for desc, paper, measured in r.paper_anchors:
            out.append((r.exp_id, desc, paper, measured))
    return out
