"""Shared helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..gpusim.diagnostics import FaultReport
from ..gpusim.errors import SimError

#: When True (``python -m repro.experiments --profile``), the figure scripts
#: run their baseline launches with per-line profiling and attach the
#: resulting :class:`~repro.prof.counters.KernelProfile` objects to the
#: :mod:`repro.prof` registry under ``"<exp_id>/<benchmark>"`` names.
PROFILE_LAUNCHES = False

#: When set (``python -m repro.experiments --parallel N``), auto-tuning
#: experiment scripts shard their variant searches across N persistent
#: pool workers (see ``repro.npc.autotune(..., parallel=)``) — results are
#: identical to the sequential search; only wall-clock changes.
AUTOTUNE_PARALLEL: Optional[int] = None


def profile_kwargs() -> dict:
    """Launch kwargs for an experiment's measurement launches."""
    return {"profile": True} if PROFILE_LAUNCHES else {}


def autotune_kwargs() -> dict:
    """Autotune kwargs honoring the harness-level ``--parallel`` flag."""
    return {"parallel": AUTOTUNE_PARALLEL} if AUTOTUNE_PARALLEL else {}


def attach_profile(exp_id: str, label: str, result) -> None:
    """Register a launch's profile (no-op for un-profiled launches)."""
    from ..prof import record_profile

    record_profile(
        f"{exp_id}/{label}",
        getattr(result, "profile", None),
        kernel=getattr(result, "kernel_name", None),
    )


def describe_failure(exc: BaseException) -> str:
    """One-line failure summary, located when the simulator knows where."""
    if isinstance(exc, SimError):
        return FaultReport.from_exception(exc).summary()
    return f"{type(exc).__name__}: {exc}"


def failure_row(name: str, reason: str, n_cols: int) -> list[object]:
    """A degraded table row standing in for a benchmark that faulted."""
    row: list[object] = [name, f"FAILED: {reason}"]
    row.extend("-" for _ in range(n_cols - len(row)))
    return row[:n_cols]


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Plain-text table with per-column width fitting."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


@dataclass
class ExperimentResult:
    """Uniform result record for one regenerated table/figure."""

    exp_id: str                    # 'fig10', 'table1', ...
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    #: Anchor values the paper states numerically, for EXPERIMENTS.md:
    #: (description, paper value, measured value).
    paper_anchors: list[tuple[str, str, str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: "name: reason" for every benchmark that faulted instead of producing
    #: a real row.  Faults degrade single rows; they never abort the table.
    failures: list[str] = field(default_factory=list)

    def add_failure(self, name: str, exc: BaseException) -> None:
        """Record a faulted benchmark as a degraded row + failure note."""
        reason = describe_failure(exc)
        self.rows.append(failure_row(name, reason, len(self.headers)))
        self.failures.append(f"{name}: {reason}")

    def format(self) -> str:
        out = [format_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")]
        if self.paper_anchors:
            out.append("")
            out.append("paper anchors (paper -> measured):")
            for desc, paper, measured in self.paper_anchors:
                out.append(f"  {desc}: {paper} -> {measured}")
        for failure in self.failures:
            out.append(f"failure: {failure}")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)
