"""CLI: ``python -m repro.experiments [--fast] [--chart] [--profile]
[--parallel N] [--cache-dir PATH] [--json PATH] [ids...]``."""

import sys

from . import EXPERIMENTS, run_all


def _take_value(argv: list[str], flag: str) -> tuple[list[str], str | None]:
    """Pop ``flag VALUE`` out of argv; (argv, None) when absent."""
    if flag not in argv:
        return argv, None
    i = argv.index(flag)
    if i + 1 >= len(argv):
        raise SystemExit(f"{flag} requires a value")
    value = argv[i + 1]
    return argv[:i] + argv[i + 2:], value


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    chart = "--chart" in argv
    profiling = "--profile" in argv
    if profiling:
        from . import util

        util.PROFILE_LAUNCHES = True
    argv, parallel = _take_value(argv, "--parallel")
    if parallel is not None:
        from . import util

        util.AUTOTUNE_PARALLEL = int(parallel)
    argv, cache_dir = _take_value(argv, "--cache-dir")
    if cache_dir is not None:
        from ..gpusim import diskcache

        diskcache.configure(cache_dir)
    json_path = None
    if "--json" in argv:
        i = argv.index("--json")
        if i + 1 >= len(argv):
            print("--json requires a path")
            return 2
        json_path = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
    ids = [a for a in argv if not a.startswith("-")]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    results = run_all(fast=fast, only=ids or None)
    if json_path is not None:
        from .report import save_json

        save_json(results, json_path)
        print(f"wrote {json_path}")
    for result in results:
        print(result.format())
        if profiling:
            from ..prof import profile_names

            attached = [
                n for n in profile_names()
                if n.startswith(result.exp_id + "/")
            ]
            if attached:
                print(f"profiles attached: {', '.join(attached)}")
        if chart and result.exp_id in ("fig10", "fig12", "fig15", "fig16"):
            from .charts import chart_fig10

            print()
            print(chart_fig10(result))
        elif chart and result.exp_id == "fig11":
            from .charts import chart_fig11

            print()
            print(chart_fig11(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
