"""Figure 13 — TMV vs CUBLAS across matrix widths (height fixed at 2K).

The width determines the total thread count of the baseline, so small
widths starve the GPU of TLP — exactly where CUDA-NP's extra slave threads
pay off.  Paper anchors: the baseline tracks CUBLAS, and at width 1K the
CUDA-NP version is 4.9× faster than CUBLAS.

Launches run at paper scale with block sampling (functional equivalence is
covered by the test suite at small scale).
"""

from __future__ import annotations

from ..kernels.cublas_proxy import CublasGemvT
from ..kernels.tmv import TmvBenchmark
from ..npc.config import NpConfig
from .util import ExperimentResult, attach_profile, profile_kwargs

FULL_WIDTHS = (1024, 2048, 4096, 8192, 16384)
FAST_WIDTHS = (256, 512, 1024)
NP_CONFIG = NpConfig(slave_size=8, np_type="inter")


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Fig. 13: TMV vs CUBLAS-proxy across matrix widths."""
    widths = FAST_WIDTHS if fast else FULL_WIDTHS
    height = 512 if fast else 2048
    sample = 2 if fast else 4
    result = ExperimentResult(
        exp_id="fig13",
        title=f"TMV sweep: widths x height={height} (modeled ms; lower is better)",
        headers=["width", "CUBLAS ms", "baseline ms", "CUDA-NP ms",
                 "NP vs CUBLAS", "NP vs baseline"],
    )
    anchor = None
    for w in widths:
        cublas = CublasGemvT(width=w, height=height, block=128)
        t_cublas = cublas.run_baseline(sample_blocks=sample).timing.seconds

        bench = TmvBenchmark(width=w, height=height, block=128)
        base = bench.run_baseline(sample_blocks=sample, **profile_kwargs())
        attach_profile("fig13", f"TMV-w{w}", base)
        t_base = base.timing.seconds
        t_np = bench.run_variant(NP_CONFIG, sample_blocks=sample).timing.seconds

        vs_cublas = t_cublas / t_np
        vs_base = t_base / t_np
        result.rows.append(
            [w, round(t_cublas * 1e3, 4), round(t_base * 1e3, 4),
             round(t_np * 1e3, 4), round(vs_cublas, 2), round(vs_base, 2)]
        )
        if w == 1024:
            anchor = vs_cublas
    result.paper_anchors = [
        ("baseline ~ CUBLAS", "similar", "see columns 2-3"),
    ]
    if anchor is not None:
        result.paper_anchors.append(
            ("CUDA-NP vs CUBLAS at width 1K", "4.9x", f"{anchor:.2f}x")
        )
    result.notes.append(
        "smaller widths -> fewer threads -> bigger CUDA-NP advantage "
        "(the paper's key trend)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
