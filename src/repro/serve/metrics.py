"""Serve-layer observability: request lifecycle events + server counters.

Every request's journey through the server — arrive → admit (or shed) →
coalesce (followers only) → complete — is recorded as a
:class:`ServeEvent` in a bounded process-wide deque, mirroring the disk
cache's event log.  :mod:`repro.prof.timeline` exports them as Chrome
``trace_event`` instants on a dedicated "serve" row, so a served launch's
trace shows the request traffic above the modeled SMX schedule.

This module deliberately imports nothing from the simulator: it is pure
bookkeeping that the timeline exporter can pull in lazily without cycles.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, List

#: Lifecycle kinds, in the order one successful coalesced request emits
#: them ("shed" replaces "admit" for rejected requests).
EVENT_KINDS = ("arrive", "admit", "coalesce", "complete", "shed")

_EVENT_CAP = 4096
_EVENTS: Deque["ServeEvent"] = collections.deque(maxlen=_EVENT_CAP)
_EVENTS_LOCK = threading.Lock()


@dataclass(frozen=True)
class ServeEvent:
    """One request-lifecycle instant (``time.monotonic`` timestamp)."""

    ts: float
    kind: str
    tenant: str = ""
    key: str = ""          # coalescing key (short prefix) when known
    detail: str = ""


def record_event(kind: str, tenant: str = "", key: str = "",
                 detail: str = "") -> ServeEvent:
    event = ServeEvent(
        ts=time.monotonic(), kind=kind, tenant=tenant,
        key=key[:16], detail=detail,
    )
    with _EVENTS_LOCK:
        _EVENTS.append(event)
    return event


def serve_events() -> List[ServeEvent]:
    """Snapshot of the bounded request-lifecycle event log."""
    with _EVENTS_LOCK:
        return list(_EVENTS)


def clear_serve_events() -> None:
    with _EVENTS_LOCK:
        _EVENTS.clear()


@dataclass
class ServeCounters:
    """One server's aggregate request accounting.

    ``launches`` counts leaders (actual simulator launches); ``coalesced``
    counts followers whose response was fanned out from a leader's launch,
    so ``launches + coalesced == completed`` for a healthy server.
    """

    requests: int = 0
    admitted: int = 0
    completed: int = 0
    launches: int = 0
    coalesced: int = 0
    shed_breaker: int = 0
    shed_capacity: int = 0
    timeouts: int = 0
    errors: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "requests", "admitted", "completed", "launches",
                    "coalesced", "shed_breaker", "shed_capacity",
                    "timeouts", "errors",
                )
            }
