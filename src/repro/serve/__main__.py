"""``python -m repro.serve`` — run the multi-tenant kernel server.

Environment knobs (flags override):

- ``GPUSIM_SERVE_PORT`` — listen port (default 8642);
- ``GPUSIM_SERVE_MAX_INFLIGHT`` — admission cap on concurrently executing
  requests (default 32; excess requests are shed with 503 + Retry-After).

SIGTERM and SIGINT both trigger a graceful drain: stop accepting, finish
in-flight launches, close every tenant stream, retire every pool worker.
The process exits 0 only when the drain was clean — a SIGKILLed straggler
worker makes the exit code 1, so "no orphaned workers" is checkable from
the outside.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

from .app import KernelServer

DEFAULT_PORT = 8642
DEFAULT_MAX_INFLIGHT = 32
DRAIN_TIMEOUT_S = 30.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant kernel server over the GPU simulator.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int,
        default=int(os.environ.get("GPUSIM_SERVE_PORT") or DEFAULT_PORT),
        help="listen port (default: $GPUSIM_SERVE_PORT or 8642)",
    )
    parser.add_argument(
        "--max-inflight", type=int,
        default=int(os.environ.get("GPUSIM_SERVE_MAX_INFLIGHT")
                    or DEFAULT_MAX_INFLIGHT),
        help="admission cap; excess requests get 503 + Retry-After "
             "(default: $GPUSIM_SERVE_MAX_INFLIGHT or 32)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="activate the persistent disk cache tier at this directory",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="enable POST /debug/breaker (force-open/reset the breaker)",
    )
    args = parser.parse_args(argv)

    if args.cache_dir:
        from ..gpusim import diskcache

        diskcache.configure(args.cache_dir)

    server = KernelServer(
        (args.host, args.port),
        max_inflight=args.max_inflight,
        debug=args.debug,
    )
    host, port = server.server_address[:2]

    drained = {}
    drain_started = threading.Event()

    def _drain(signum, frame):
        # Idempotent: a second signal while draining is ignored rather
        # than re-entering shutdown.
        if drain_started.is_set():
            return
        drain_started.set()
        # shutdown() must not run on the serve_forever thread; hand the
        # drain to a helper so the handler returns promptly.
        def run():
            drained["clean"] = server.drain(DRAIN_TIMEOUT_S)
        threading.Thread(target=run, name="serve-drain", daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    print(f"repro.serve listening on http://{host}:{port} "
          f"(max_inflight={args.max_inflight}"
          f"{', debug' if args.debug else ''})", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        if not drain_started.is_set():
            drain_started.set()
            drained["clean"] = server.drain(DRAIN_TIMEOUT_S)
        server.server_close()

    # serve_forever returned => a drain ran (signal) or is running; wait
    # for its verdict before choosing the exit code.
    for _ in range(int(DRAIN_TIMEOUT_S * 10)):
        if "clean" in drained:
            break
        threading.Event().wait(0.1)
    clean = drained.get("clean", False)
    print(f"repro.serve drained {'cleanly' if clean else 'UNCLEAN'}",
          flush=True)
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
