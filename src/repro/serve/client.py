"""Minimal stdlib client for the kernel server (urllib, no dependencies).

Used by the ``repro.bench --serve`` load generator, the CI smoke test,
and anyone scripting against a running server::

    client = ServeClient("http://127.0.0.1:8642")
    resp = client.launch("__global__ void k(float* x, int n) { ... }",
                         grid=4, block=64, args={"x": x, "n": 256})
    resp["buffers"]["x"]  # decoded back to an ndarray via arrays()
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

import numpy as np

from .protocol import decode_array, encode_array


class ServeError(RuntimeError):
    """Non-2xx server response, carrying the HTTP status and decoded body."""

    def __init__(self, status: int, body: dict,
                 retry_after: Optional[float] = None) -> None:
        message = body.get("error", {}).get("message", "server error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body
        self.retry_after = retry_after


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw.decode())
            except ValueError:
                body = {"error": {"message": raw.decode(errors="replace")}}
            retry_after = exc.headers.get("Retry-After")
            raise ServeError(
                exc.code, body,
                retry_after=float(retry_after) if retry_after else None,
            ) from None

    def launch(
        self,
        kernel: str,
        grid,
        block,
        args: Dict[str, object],
        *,
        tenant: str = "default",
        const_arrays: Optional[Dict[str, np.ndarray]] = None,
        backend: Optional[str] = None,
        parallel: Optional[int] = None,
        profile: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> dict:
        """POST one launch; returns the decoded JSON response body.

        ndarray values in ``args``/``const_arrays`` are encoded
        transparently.  Raises :class:`ServeError` on any non-2xx status
        (including 503 sheds, whose ``retry_after`` is exposed).
        """
        wire_args = {
            name: encode_array(v) if isinstance(v, np.ndarray) else v
            for name, v in args.items()
        }
        payload = {
            "tenant": tenant,
            "kernel": kernel,
            "grid": list(grid) if isinstance(grid, (tuple, list)) else grid,
            "block": list(block) if isinstance(block, (tuple, list)) else block,
            "args": wire_args,
        }
        if const_arrays:
            payload["const_arrays"] = {
                name: encode_array(np.asarray(v))
                for name, v in const_arrays.items()
            }
        options = {}
        if backend is not None:
            options["backend"] = backend
        if parallel is not None:
            options["parallel"] = parallel
        if profile:
            options["profile"] = True
        if deadline_ms is not None:
            options["deadline_ms"] = deadline_ms
        if options:
            payload["options"] = options
        return self._request("POST", "/v1/launch", payload)

    @staticmethod
    def arrays(response: dict) -> Dict[str, np.ndarray]:
        """Decode every buffer in a launch response back to ndarrays."""
        return {
            name: decode_array(encoded, name)
            for name, encoded in response.get("buffers", {}).items()
        }

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/statz")

    def debug_breaker(self, action: str) -> dict:
        return self._request("POST", "/debug/breaker", {"action": action})
