"""Wire protocol of the kernel server: JSON requests, base64 ndarrays.

A launch request is one JSON object::

    {
      "tenant": "alice",                  # optional, default "default"
      "kernel": "__global__ void k(...)", # mini-CUDA source text
      "grid":  [4, 1, 1],                 # int or up-to-3 list
      "block": 64,
      "args": {
        "x": {"dtype": "float32", "shape": [256], "data": "<base64>"},
        "n": 256                          # scalars stay plain JSON numbers
      },
      "const_arrays": { ... same encoding ... },   # optional
      "options": {                                  # all optional
        "backend": "compiled",            # interp | compiled | megablock
        "parallel": 2,                    # worker count for the pool path
        "profile": true,                  # per-line counters in response
        "deadline_ms": 2000               # per-request completion deadline
      }
    }

The response carries the final buffer contents (same ndarray encoding),
the :class:`~repro.gpusim.stats.KernelStats` counters, the modeled
milliseconds, the resilience telemetry summary when the pool ran, and —
with ``"profile": true`` — the per-line profile plus the name it was
recorded under in the :mod:`repro.prof` registry.

Identical concurrent requests are *coalesced*: the coalescing key is a
sha256 over the canonical request content (raw kernel source digest,
normalized grid/block, backend/profile options, scalar values, and the
bytes of every array argument), so two tenants submitting the same kernel
on the same data share one simulator launch and both see bit-identical
buffers.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..gpusim.launch import LaunchResult, _as_dim3
from ..gpusim.errors import LaunchError

#: Wire-format version, echoed in every response.
PROTOCOL_VERSION = 1

#: dtypes a request may carry (the simulator's universe of element types).
ALLOWED_DTYPES = ("float32", "float64", "int32", "int64", "uint8", "uint32")


class ProtocolError(ValueError):
    """Malformed request payload (maps to HTTP 400)."""


def encode_array(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj, name: str = "?") -> np.ndarray:
    if not isinstance(obj, dict) or "data" not in obj:
        raise ProtocolError(
            f"array argument {name!r} must be an object with "
            "dtype/shape/data fields"
        )
    dtype = obj.get("dtype", "float32")
    if dtype not in ALLOWED_DTYPES:
        raise ProtocolError(
            f"array argument {name!r} has unsupported dtype {dtype!r}"
        )
    try:
        raw = base64.b64decode(obj["data"], validate=True)
        arr = np.frombuffer(raw, dtype=np.dtype(dtype)).copy()
        shape = obj.get("shape")
        if shape is not None:
            arr = arr.reshape([int(s) for s in shape])
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"array argument {name!r} is corrupt: {exc}") from None
    return arr


@dataclass
class LaunchRequest:
    """One parsed, validated launch request."""

    tenant: str
    source: str
    grid: tuple
    block: tuple
    args: Dict[str, object]                 # name -> scalar | ndarray
    const_arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    backend: Optional[str] = None
    parallel: Optional[int] = None
    profile: bool = False
    deadline_ms: Optional[float] = None

    @property
    def source_digest(self) -> str:
        return hashlib.sha256(self.source.encode()).hexdigest()


def parse_request(body: bytes) -> LaunchRequest:
    """Decode and validate one request body; raises :class:`ProtocolError`."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    source = payload.get("kernel")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError('"kernel" must hold mini-CUDA source text')
    if "grid" not in payload or "block" not in payload:
        raise ProtocolError('"grid" and "block" are required')

    def dim(name):
        value = payload[name]
        if isinstance(value, list):
            value = tuple(value)
        if not isinstance(value, (int, tuple)):
            raise ProtocolError(f'"{name}" must be an int or a list of ints')
        try:
            return _as_dim3(value)
        except LaunchError as exc:
            raise ProtocolError(f'"{name}": {exc}') from None

    grid, block = dim("grid"), dim("block")

    raw_args = payload.get("args", {})
    if not isinstance(raw_args, dict):
        raise ProtocolError('"args" must be an object')
    args: Dict[str, object] = {}
    for name, value in raw_args.items():
        if isinstance(value, bool):
            raise ProtocolError(f"argument {name!r}: booleans are not kernel scalars")
        if isinstance(value, (int, float)):
            args[name] = value
        else:
            args[name] = decode_array(value, name)

    const_arrays: Dict[str, np.ndarray] = {}
    raw_const = payload.get("const_arrays", {}) or {}
    if not isinstance(raw_const, dict):
        raise ProtocolError('"const_arrays" must be an object')
    for name, value in raw_const.items():
        const_arrays[name] = decode_array(value, name)

    options = payload.get("options", {}) or {}
    if not isinstance(options, dict):
        raise ProtocolError('"options" must be an object')
    backend = options.get("backend")
    if backend is not None and backend not in ("interp", "compiled", "megablock"):
        raise ProtocolError(f"unknown backend {backend!r}")
    parallel = options.get("parallel")
    if parallel is not None and (not isinstance(parallel, int) or parallel < 1):
        raise ProtocolError('"options.parallel" must be a positive int')
    deadline_ms = options.get("deadline_ms")
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ProtocolError('"options.deadline_ms" must be a number') from None
        if deadline_ms <= 0:
            raise ProtocolError('"options.deadline_ms" must be positive')

    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError('"tenant" must be a non-empty string')

    return LaunchRequest(
        tenant=tenant,
        source=source,
        grid=grid,
        block=block,
        args=args,
        const_arrays=const_arrays,
        backend=backend,
        parallel=parallel,
        profile=bool(options.get("profile", False)),
        deadline_ms=deadline_ms,
    )


def coalesce_key(req: LaunchRequest) -> str:
    """Content digest identifying launches that may share one execution.

    Tenant identity and the deadline are deliberately *excluded*: two
    tenants asking for the same kernel on the same bytes get the same
    bits back, so they may share the launch.  Everything that could change
    the output — source, shape, backend, profiling, parallelism, scalar
    values, array contents — is included.
    """
    digest = hashlib.sha256()
    head = {
        "v": PROTOCOL_VERSION,
        "source": req.source_digest,
        "grid": list(req.grid),
        "block": list(req.block),
        "backend": req.backend,
        "parallel": req.parallel,
        "profile": req.profile,
    }
    digest.update(json.dumps(head, sort_keys=True).encode())
    for name in sorted(req.args):
        value = req.args[name]
        digest.update(name.encode())
        if isinstance(value, np.ndarray):
            digest.update(str(value.dtype).encode())
            digest.update(np.ascontiguousarray(value).tobytes())
        else:
            digest.update(repr(value).encode())
    for name in sorted(req.const_arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(req.const_arrays[name]).tobytes())
    return digest.hexdigest()


def _resilience_summary(telemetry) -> Optional[dict]:
    if telemetry is None:
        return None
    return {
        "pool_mode": telemetry.pool_mode,
        "workers": telemetry.workers,
        "chunks": telemetry.chunks,
        "attempts": telemetry.attempts,
        "retries": telemetry.retries,
        "deadline_kills": telemetry.deadline_kills,
        "worker_crashes": telemetry.worker_crashes,
        "breaker_state": telemetry.breaker_state,
        "degraded": telemetry.degraded,
        "events": len(telemetry.events),
    }


def encode_result(
    result: LaunchResult,
    *,
    key: str,
    coalesced: bool,
    profile_name: Optional[str] = None,
) -> dict:
    """JSON-ready response body for one completed launch."""
    import dataclasses

    body = {
        "version": PROTOCOL_VERSION,
        "ok": result.ok,
        "kernel": result.kernel_name,
        "key": key,
        "coalesced": coalesced,
        "grid": list(result.grid),
        "block": list(result.block),
        "backend": result.backend,
        "buffers": {
            name: encode_array(buf.data)
            for name, buf in result.gmem.buffers().items()
        },
        "stats": dataclasses.asdict(result.stats),
        "timing_ms": (
            result.timing.milliseconds if result.timing is not None else None
        ),
        "parallel_workers": result.parallel_workers,
        "parallel_fallback": result.parallel_fallback,
        "megablock_fallback": result.megablock_fallback,
        "resilience": _resilience_summary(result.resilience),
    }
    if result.error is not None:
        body["error"] = {
            "message": result.error.message,
            "summary": result.error.summary(),
        }
    if result.profile is not None:
        body["profile"] = result.profile.as_dict()
        body["profile_name"] = profile_name
    return body


def error_body(message: str, *, kind: str = "error") -> bytes:
    return json.dumps(
        {"version": PROTOCOL_VERSION, "ok": False, "kind": kind,
         "error": {"message": message}}
    ).encode()
