"""Request coalescing: identical concurrent launches share one execution.

When several tenants submit byte-identical requests (same source digest,
same launch geometry, same argument bytes — see
:func:`repro.serve.protocol.coalesce_key`), only the *leader* (first
arrival) enqueues a real launch; *followers* attach to the in-flight
entry and fan the leader's :class:`~repro.gpusim.launch.LaunchResult`
back to every waiter.  All responses are therefore bit-identical by
construction — they encode the same buffers.

The fan-out is built on the stream layer's cross-stream
:class:`~repro.gpusim.stream.Event`: the leader enqueues its launch on
its tenant stream and records an event immediately behind it, so stream
FIFO order guarantees the future is fulfilled by the time the event
fires.  Followers block on ``event.synchronize`` under their own
per-request deadlines — a slow follower deadline never cancels the
leader's launch, and a follower arriving after completion simply becomes
the next leader (the entry is retired once its event has fired).

This is *request* coalescing — deduplicating identical work across
tenants — and is orthogonal to megablock *batching*, which vectorizes
the block axis inside one launch.  A coalesced launch may well execute
on the megablock backend; the two multiply.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

from ..gpusim.launch import LaunchResult
from ..gpusim.stream import Event, LaunchFuture, Stream
from . import metrics
from .protocol import LaunchRequest


class _Inflight:
    """One in-flight coalesced launch: the leader's future + fan-out event."""

    __slots__ = ("key", "tenant", "future", "event", "followers", "retired")

    def __init__(self, key: str, tenant: str, future: LaunchFuture,
                 event: Event) -> None:
        self.key = key
        self.tenant = tenant
        self.future = future
        self.event = event
        self.followers = 0
        self.retired = False


class CoalescingBatcher:
    """Content-keyed single-flight launcher over per-tenant streams."""

    def __init__(self) -> None:
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self.launches = 0
        self.coalesced = 0

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def submit(
        self,
        req: LaunchRequest,
        key: str,
        stream: Stream,
        kernel,
        launch_kwargs: dict,
        deadline: Optional[float] = None,
    ) -> Tuple[LaunchResult, bool]:
        """Run (or join) the launch identified by ``key``.

        ``deadline`` is an absolute ``time.monotonic`` instant; expiry
        raises :class:`TimeoutError`.  Returns the launch result and
        whether this request was coalesced onto another tenant's launch.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.followers += 1
                self.coalesced += 1
                coalesced = True
            else:
                # Leader: enqueue the launch, then record the fan-out event
                # directly behind it.  Both enqueues happen under the
                # batcher lock so no follower can slip between map insert
                # and the launch actually being queued.
                future = stream.launch_async(
                    kernel, req.grid, req.block, req.args,
                    const_arrays=req.const_arrays or None,
                    on_error="status",
                    **launch_kwargs,
                )
                event = Event(name=f"coalesce-{key[:12]}").record(stream)
                entry = _Inflight(key, req.tenant, future, event)
                self._inflight[key] = entry
                self.launches += 1
                coalesced = False

        if coalesced:
            metrics.record_event(
                "coalesce", tenant=req.tenant, key=key,
                detail=f"leader={entry.tenant}",
            )

        timeout = None
        if deadline is not None:
            timeout = max(deadline - time.monotonic(), 0.0)
        try:
            entry.event.synchronize(timeout)
        except TimeoutError:
            raise TimeoutError(
                f"launch {key[:12]} (leader tenant {entry.tenant!r}) did not "
                f"complete within the request deadline"
            ) from None
        finally:
            # Whoever notices the event first retires the entry; later
            # identical requests then start a fresh launch instead of
            # reading retired state.  A timed-out waiter leaves a live
            # entry in place — it IS still in flight.
            if entry.event.query():
                self._retire(entry)

        # Event fired => stream FIFO already fulfilled the future.
        exc = entry.future.exception(timeout=0)
        if exc is not None:
            raise exc
        return entry.future.result(timeout=0), coalesced

    def _retire(self, entry: _Inflight) -> None:
        with self._lock:
            if not entry.retired:
                entry.retired = True
                self._inflight.pop(entry.key, None)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "launches": self.launches,
                "coalesced": self.coalesced,
            }
