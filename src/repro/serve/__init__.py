"""Multi-tenant kernel server: HTTP front end over the GPU simulator.

``python -m repro.serve`` starts a stdlib ``ThreadingHTTPServer`` that
accepts kernel-source + named-buffer launch requests, dedupes parsing by
source digest through both cache tiers, coalesces identical concurrent
requests into one launch (fanning the result back to every waiter,
bit-identical), runs each tenant's launches in FIFO order on its own
stream, and sheds load with ``503`` + ``Retry-After`` while the circuit
breaker is open.  See :mod:`repro.serve.protocol` for the wire schema
and the README's "Serving" section for a walkthrough.
"""

from .app import KernelServer
from .batcher import CoalescingBatcher
from .client import ServeClient, ServeError
from .kernels import KernelCache
from .metrics import ServeCounters, ServeEvent, clear_serve_events, serve_events
from .protocol import (
    LaunchRequest,
    ProtocolError,
    coalesce_key,
    decode_array,
    encode_array,
    encode_result,
    parse_request,
)
from .tenants import TenantRegistry, TenantState

__all__ = [
    "KernelServer",
    "CoalescingBatcher",
    "ServeClient",
    "ServeError",
    "KernelCache",
    "ServeCounters",
    "ServeEvent",
    "serve_events",
    "clear_serve_events",
    "LaunchRequest",
    "ProtocolError",
    "coalesce_key",
    "decode_array",
    "encode_array",
    "encode_result",
    "parse_request",
    "TenantRegistry",
    "TenantState",
]
