"""Per-tenant execution state: one named stream per tenant.

Each tenant the server has seen owns a :class:`~repro.gpusim.stream.Stream`
named ``tenant-<name>``, so its launches retain CUDA's per-stream FIFO
ordering while different tenants proceed concurrently — the serve-layer
analogue of one CUDA stream per client process.  Streams are created
lazily on first request and all drained together at shutdown.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..gpusim.stream import Stream


@dataclass
class TenantState:
    """One tenant's stream plus its request accounting."""

    name: str
    stream: Stream
    requests: int = 0
    launches: int = 0
    coalesced: int = 0
    errors: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "stream": self.stream.name,
                "requests": self.requests,
                "launches": self.launches,
                "coalesced": self.coalesced,
                "errors": self.errors,
            }


class TenantRegistry:
    """Lazily-populated map of tenant name → :class:`TenantState`."""

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._closed = False

    def get(self, name: str) -> TenantState:
        with self._lock:
            if self._closed:
                raise RuntimeError("tenant registry is closed (server draining)")
            state = self._tenants.get(name)
            if state is None:
                state = TenantState(name=name, stream=Stream(name=f"tenant-{name}"))
                self._tenants[name] = state
            return state

    def peek(self, name: str) -> Optional[TenantState]:
        with self._lock:
            return self._tenants.get(name)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            states = list(self._tenants.values())
        return {state.name: state.snapshot() for state in states}

    def close_all(self, timeout: Optional[float] = None) -> bool:
        """Drain and close every tenant stream; True when all drained clean.

        New tenants are refused from the first call onward, so shutdown
        cannot race an arriving request into a stream that will never be
        drained.
        """
        with self._lock:
            self._closed = True
            states = list(self._tenants.values())
        clean = True
        for state in states:
            try:
                state.stream.synchronize(timeout)
            except TimeoutError:
                clean = False
            state.stream.close()
        return clean
