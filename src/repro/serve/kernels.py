"""Source-digest kernel dedupe: memory LRU over the persistent disk tier.

The server parses each distinct kernel source exactly once per process:
requests are keyed by the sha256 of the *raw* source text, hitting a
bounded in-memory LRU of parsed :class:`~repro.minicuda.nodes.Kernel`
ASTs.  When the persistent cache tier is active
(:func:`repro.gpusim.diskcache.get_disk_cache`), misses fall through to
the ``"kernel"`` namespace — a pickled AST keyed by the same digest — so
a restarted server skips re-parsing sources its predecessor served.

Lowering (closure compilation) is deduplicated one layer down by
:func:`repro.gpusim.compile.compile_kernel`'s own digest-keyed cache, so
this module only has to make parsing once-per-source.
"""

from __future__ import annotations

import collections
import threading
from typing import Optional

from ..gpusim import diskcache
from ..minicuda.nodes import Kernel
from ..minicuda.parser import parse_kernel

_DEFAULT_CAPACITY = 128


class KernelCache:
    """Thread-safe source-digest → parsed-kernel cache (LRU + disk tier)."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self.capacity = max(int(capacity), 1)
        self._lru: "collections.OrderedDict[str, Kernel]" = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def get(self, digest: str, source: str) -> Kernel:
        """Parsed kernel for ``source`` (whose sha256 is ``digest``)."""
        with self._lock:
            kernel = self._lru.get(digest)
            if kernel is not None:
                self._lru.move_to_end(digest)
                self.hits += 1
                return kernel
            self.misses += 1

        # Parse (or disk-load) outside the lock: concurrent first requests
        # for the same source may both parse, but the ASTs are equivalent
        # and last-writer-wins is harmless.
        kernel = self._from_disk(digest)
        if kernel is None:
            kernel = parse_kernel(source)
            self._to_disk(digest, kernel)

        with self._lock:
            self._lru[digest] = kernel
            self._lru.move_to_end(digest)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
        return kernel

    def _from_disk(self, digest: str) -> Optional[Kernel]:
        cache = diskcache.get_disk_cache()
        if cache is None:
            return None
        kernel = cache.get_blob("kernel", {"source_sha256": digest})
        if isinstance(kernel, Kernel):
            with self._lock:
                self.disk_hits += 1
            return kernel
        return None

    def _to_disk(self, digest: str, kernel: Kernel) -> None:
        cache = diskcache.get_disk_cache()
        if cache is not None:
            cache.put_blob("kernel", {"source_sha256": digest}, kernel)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._lru),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
            }
