"""The multi-tenant kernel server: HTTP front end over the simulator.

``KernelServer`` is a stdlib :class:`~http.server.ThreadingHTTPServer`
(one handler thread per connection — no third-party framework) exposing:

- ``POST /v1/launch`` — simulate one kernel launch (see
  :mod:`repro.serve.protocol` for the JSON schema).  Identical concurrent
  requests are coalesced into one execution; each tenant's launches run
  in FIFO order on its own stream.
- ``GET /healthz`` — liveness: breaker state, pool worker health,
  in-flight count.
- ``GET /statz`` — full counters: server, per-tenant, batcher, kernel
  cache, disk cache, breaker.
- ``POST /debug/breaker`` — (only with ``debug=True``) force the circuit
  breaker open or reset it, so breaker-aware shedding is testable
  without crashing real workers.

Admission control happens before any simulator work:

1. circuit breaker *open* → ``503`` with ``Retry-After`` (the parallel
   substrate is known-unhealthy; shedding beats queueing);
2. in-flight cap (``max_inflight``) reached → ``503`` with
   ``Retry-After``;
3. otherwise the request is admitted and carries its own
   ``deadline_ms`` — expiry returns ``504`` without cancelling the
   underlying launch (a coalesced sibling may still be waiting on it).

Faulting launches are *contained*, CUDA-style: the kernel runs with
``on_error="status"`` and a located fault comes back as ``422`` with the
full :class:`~repro.gpusim.diagnostics.FaultReport` summary in the body.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..gpusim import pool as gpupool
from ..gpusim.resilience import get_breaker
from ..prof.registry import record_profile
from . import metrics
from .batcher import CoalescingBatcher
from .kernels import KernelCache
from .protocol import (
    ProtocolError,
    coalesce_key,
    encode_result,
    error_body,
    parse_request,
)
from .tenants import TenantRegistry

#: Default seconds clients are told to back off when the server sheds.
RETRY_AFTER_S = 1

#: Request bodies past this size are refused outright (64 MiB of base64
#: covers every paper benchmark with room to spare).
MAX_BODY_BYTES = 64 * 1024 * 1024


class KernelServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning all serve-layer state."""

    daemon_threads = True

    def __init__(self, address, *, max_inflight: int = 32,
                 debug: bool = False) -> None:
        super().__init__(address, ServeHandler)
        self.max_inflight = max_inflight
        self.debug = debug
        self.counters = metrics.ServeCounters()
        self.batcher = CoalescingBatcher()
        self.tenants = TenantRegistry()
        self.kernel_cache = KernelCache()
        self.started = time.monotonic()
        self._admission = threading.BoundedSemaphore(max_inflight)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, drain streams, drain the pool.

        Returns True when every tenant stream and every pool worker wound
        down cleanly within ``timeout`` — the server process should exit
        non-zero otherwise, so orphaned workers are an observable failure.
        """
        self.shutdown()
        streams_clean = self.tenants.close_all(timeout)
        pool_clean = gpupool.drain_pool(timeout)
        return streams_clean and pool_clean


class ServeHandler(BaseHTTPRequestHandler):
    server: KernelServer
    protocol_version = "HTTP/1.1"

    # Quiet by default: per-request stderr lines are noise under load.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ------------------------------------------------------------

    def _send(self, code: int, body: bytes,
              extra_headers: Optional[dict] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _send_json(self, code: int, obj: dict,
                   extra_headers: Optional[dict] = None) -> None:
        self._send(code, json.dumps(obj).encode(), extra_headers)

    def _read_body(self) -> Optional[bytes]:
        length = self.headers.get("Content-Length")
        if length is None:
            self._send(411, error_body("Content-Length is required"))
            return None
        length = int(length)
        if length > MAX_BODY_BYTES:
            self._send(413, error_body(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"))
            return None
        return self.rfile.read(length)

    # -- GET: health + stats -------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            # Reading pool internals (not get_pool()) on purpose: a health
            # probe must never be what spawns the worker pool.
            workers = (
                gpupool._POOL.health() if gpupool._POOL is not None else []
            )
            self._send_json(200, {
                "ok": True,
                "uptime_s": round(time.monotonic() - self.server.started, 3),
                "breaker": get_breaker().state,
                "inflight": self.server.batcher.inflight(),
                "max_inflight": self.server.max_inflight,
                "workers": workers,
                "counters": self.server.counters.snapshot(),
            })
        elif self.path == "/statz":
            from ..gpusim.diskcache import get_disk_cache

            disk = get_disk_cache()
            self._send_json(200, {
                "counters": self.server.counters.snapshot(),
                "tenants": self.server.tenants.snapshot(),
                "batcher": self.server.batcher.snapshot(),
                "kernel_cache": self.server.kernel_cache.snapshot(),
                "disk_cache": None if disk is None else str(disk.root),
                "breaker": {
                    "state": get_breaker().state,
                    "trips": get_breaker().trips,
                },
                "events": [
                    {"ts": e.ts, "kind": e.kind, "tenant": e.tenant,
                     "key": e.key, "detail": e.detail}
                    for e in metrics.serve_events()[-64:]
                ],
            })
        else:
            self._send(404, error_body(f"unknown path {self.path!r}"))

    # -- POST: launch + debug ------------------------------------------------

    def do_POST(self) -> None:
        if self.path == "/v1/launch":
            self._handle_launch()
        elif self.path == "/debug/breaker":
            self._handle_debug_breaker()
        else:
            self._send(404, error_body(f"unknown path {self.path!r}"))

    def _handle_debug_breaker(self) -> None:
        if not self.server.debug:
            self._send(403, error_body(
                "debug endpoints are disabled (start with --debug)"))
            return
        body = self._read_body()
        if body is None:
            return
        try:
            action = json.loads(body.decode()).get("action")
        except (ValueError, AttributeError):
            action = None
        breaker = get_breaker()
        if action == "open":
            breaker.force_open("debug endpoint")
        elif action == "reset":
            breaker.reset()
        else:
            self._send(400, error_body('"action" must be "open" or "reset"'))
            return
        self._send_json(200, {"ok": True, "breaker": breaker.state})

    def _handle_launch(self) -> None:
        server = self.server
        counters = server.counters
        counters.bump("requests")
        body = self._read_body()
        if body is None:
            counters.bump("errors")
            return

        try:
            req = parse_request(body)
        except ProtocolError as exc:
            counters.bump("errors")
            self._send(400, error_body(str(exc), kind="protocol"))
            return
        metrics.record_event("arrive", tenant=req.tenant,
                             detail=f"{len(body)}B")

        # Admission gate 1: known-unhealthy parallel substrate -> shed.
        breaker = get_breaker()
        if breaker.state == "open":
            counters.bump("shed_breaker")
            metrics.record_event("shed", tenant=req.tenant,
                                 detail="breaker-open")
            self._send(
                503,
                error_body("circuit breaker is open; retry shortly",
                           kind="shed-breaker"),
                {"Retry-After": str(RETRY_AFTER_S)},
            )
            return

        # Admission gate 2: bounded concurrency.
        if not server._admission.acquire(blocking=False):
            counters.bump("shed_capacity")
            metrics.record_event("shed", tenant=req.tenant,
                                 detail="capacity")
            self._send(
                503,
                error_body(
                    f"server is at its in-flight limit "
                    f"({server.max_inflight}); retry shortly",
                    kind="shed-capacity"),
                {"Retry-After": str(RETRY_AFTER_S)},
            )
            return

        try:
            self._admitted_launch(req)
        finally:
            server._admission.release()

    def _admitted_launch(self, req) -> None:
        server = self.server
        counters = server.counters
        counters.bump("admitted")
        key = coalesce_key(req)
        metrics.record_event("admit", tenant=req.tenant, key=key)

        try:
            tenant = server.tenants.get(req.tenant)
        except RuntimeError as exc:  # registry closed: draining
            counters.bump("errors")
            self._send(503, error_body(str(exc), kind="draining"),
                       {"Retry-After": str(RETRY_AFTER_S)})
            return
        tenant.bump("requests")

        kernel = server.kernel_cache.get(req.source_digest, req.source)
        launch_kwargs = {}
        if req.backend is not None:
            launch_kwargs["backend"] = req.backend
        if req.parallel is not None:
            launch_kwargs["parallel"] = req.parallel
        if req.profile:
            launch_kwargs["profile"] = True
        deadline = (
            time.monotonic() + req.deadline_ms / 1000.0
            if req.deadline_ms is not None else None
        )

        try:
            result, coalesced = server.batcher.submit(
                req, key, tenant.stream, kernel, launch_kwargs,
                deadline=deadline,
            )
        except TimeoutError as exc:
            counters.bump("timeouts")
            tenant.bump("errors")
            self._send(504, error_body(str(exc), kind="deadline"))
            return
        except Exception as exc:  # parse/arg errors surface located
            counters.bump("errors")
            tenant.bump("errors")
            self._send(500, error_body(f"{type(exc).__name__}: {exc}"))
            return

        tenant.bump("coalesced" if coalesced else "launches")
        counters.bump("coalesced" if coalesced else "launches")

        profile_name = None
        if req.profile and result.profile is not None:
            profile_name = f"serve/{req.tenant}/{result.kernel_name}"
            record_profile(profile_name, result.profile,
                           tenant=req.tenant, key=key[:16])

        body = encode_result(result, key=key, coalesced=coalesced,
                             profile_name=profile_name)
        counters.bump("completed")
        metrics.record_event(
            "complete", tenant=req.tenant, key=key,
            detail="coalesced" if coalesced else "launched",
        )
        if result.error is not None:
            counters.bump("errors")
            tenant.bump("errors")
            self._send_json(422, body)
        else:
            self._send_json(200, body)
